package theory_test

import (
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// Closed-form termination times for parametrised families, derived from the
// double-cover law and checked against the simulator. These pin the exact
// constants the paper's bounds hide.

func runRounds(t *testing.T, g *graph.Graph, src graph.NodeID) int {
	t.Helper()
	rep, err := core.Run(g, src)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Rounds()
}

func TestClosedFormPath(t *testing.T) {
	// Path P_n from node i: max(i, n-1-i) rounds (pure eccentricity).
	for _, n := range []int{2, 3, 5, 8, 13} {
		g := gen.Path(n)
		for i := 0; i < n; i++ {
			want := i
			if n-1-i > want {
				want = n - 1 - i
			}
			if got := runRounds(t, g, graph.NodeID(i)); got != want {
				t.Errorf("P%d from %d: %d rounds, want %d", n, i, got, want)
			}
		}
	}
}

func TestClosedFormEvenCycle(t *testing.T) {
	// Even cycle C_n: n/2 rounds from any node.
	for _, n := range []int{4, 6, 10, 20} {
		g := gen.Cycle(n)
		for _, src := range []graph.NodeID{0, graph.NodeID(n / 3)} {
			if got := runRounds(t, g, src); got != n/2 {
				t.Errorf("C%d from %d: %d rounds, want %d", n, src, got, n/2)
			}
		}
	}
}

func TestClosedFormOddCycle(t *testing.T) {
	// Odd cycle C_n: exactly n rounds = 2D+1 from any node.
	for _, n := range []int{3, 5, 9, 21} {
		g := gen.Cycle(n)
		for _, src := range []graph.NodeID{0, graph.NodeID(n / 2)} {
			if got := runRounds(t, g, src); got != n {
				t.Errorf("C%d from %d: %d rounds, want %d", n, src, got, n)
			}
		}
	}
}

func TestClosedFormClique(t *testing.T) {
	// Clique K_n (n >= 3): exactly 3 rounds = 2D+1. The echo needs one
	// round out, one round of cross-exchange, one round back.
	for _, n := range []int{3, 4, 7, 16} {
		g := gen.Complete(n)
		if got := runRounds(t, g, 0); got != 3 {
			t.Errorf("K%d: %d rounds, want 3", n, got)
		}
	}
	// K2 is bipartite: 1 round.
	if got := runRounds(t, gen.Complete(2), 0); got != 1 {
		t.Errorf("K2: %d rounds, want 1", got)
	}
}

func TestClosedFormStar(t *testing.T) {
	// Star: 1 round from the hub, 2 from a leaf.
	g := gen.Star(9)
	if got := runRounds(t, g, 0); got != 1 {
		t.Errorf("star hub: %d rounds, want 1", got)
	}
	if got := runRounds(t, g, 5); got != 2 {
		t.Errorf("star leaf: %d rounds, want 2", got)
	}
}

func TestClosedFormCompleteBipartite(t *testing.T) {
	// K_{a,b} with a,b >= 2: 2 rounds from any node (eccentricity 2).
	for _, ab := range [][2]int{{2, 2}, {3, 5}, {4, 4}} {
		g := gen.CompleteBipartite(ab[0], ab[1])
		if got := runRounds(t, g, 0); got != 2 {
			t.Errorf("K_{%d,%d}: %d rounds, want 2", ab[0], ab[1], got)
		}
	}
	// K_{1,b} is the star.
	if got := runRounds(t, gen.CompleteBipartite(1, 4), 0); got != 1 {
		t.Errorf("K_{1,4} from the hub: %d rounds, want 1", got)
	}
}

func TestClosedFormHypercube(t *testing.T) {
	// Hypercube Q_d: exactly d rounds from any node.
	for d := 1; d <= 7; d++ {
		g := gen.Hypercube(d)
		if got := runRounds(t, g, 0); got != d {
			t.Errorf("Q%d: %d rounds, want %d", d, got, d)
		}
	}
}

func TestClosedFormWheel(t *testing.T) {
	// Wheel W_n (n >= 5 nodes): 3 rounds from the hub.
	for _, n := range []int{5, 9, 17} {
		g := gen.Wheel(n)
		if got := runRounds(t, g, 0); got != 3 {
			t.Errorf("W%d from hub: %d rounds, want 3", n, got)
		}
	}
}

func TestClosedFormGrid(t *testing.T) {
	// Grid from a corner: (rows-1)+(cols-1) rounds.
	for _, rc := range [][2]int{{2, 2}, {3, 4}, {5, 5}, {2, 9}} {
		rows, cols := rc[0], rc[1]
		g := gen.Grid(rows, cols)
		want := rows + cols - 2
		if got := runRounds(t, g, 0); got != want {
			t.Errorf("grid %dx%d corner: %d rounds, want %d", rows, cols, got, want)
		}
	}
}

func TestClosedFormPetersen(t *testing.T) {
	// Petersen graph: 5 rounds = 2D+1 from any node (vertex-transitive).
	g := gen.Petersen()
	for src := 0; src < 10; src++ {
		if got := runRounds(t, g, graph.NodeID(src)); got != 5 {
			t.Errorf("petersen from %d: %d rounds, want 5", src, got)
		}
	}
}

func TestClosedFormTorus(t *testing.T) {
	// Even x even torus: bipartite, rounds = rows/2 + cols/2.
	cases := []struct {
		rows, cols, want int
	}{
		{4, 4, 4},
		{4, 6, 5},
		{6, 6, 6},
	}
	for _, tc := range cases {
		g := gen.Torus(tc.rows, tc.cols)
		if got := runRounds(t, g, 0); got != tc.want {
			t.Errorf("torus %dx%d: %d rounds, want %d", tc.rows, tc.cols, got, tc.want)
		}
	}
}
