package theory_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

func TestCheckDoubleCoverExactAcceptsRealRuns(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Path(7), gen.Cycle(6), gen.Cycle(7), gen.Complete(8),
		gen.Petersen(), gen.Grid(4, 5), gen.Lollipop(4, 6),
	} {
		rep := mustRun(t, g, 0)
		if err := theory.CheckDoubleCoverExact(g, rep); err != nil {
			t.Errorf("%s: %v", g, err)
		}
	}
}

func TestCheckDoubleCoverExactCatchesTampering(t *testing.T) {
	g := gen.Cycle(5)
	rep := mustRun(t, g, 0)

	wrongRounds := *rep
	wrongRounds.Result.Rounds++
	if err := theory.CheckDoubleCoverExact(g, &wrongRounds); err == nil {
		t.Error("tampered rounds accepted")
	}

	wrongMsgs := *rep
	wrongMsgs.Result.TotalMessages++
	if err := theory.CheckDoubleCoverExact(g, &wrongMsgs); err == nil {
		t.Error("tampered message count accepted")
	}

	wrongCounts := *rep
	wrongCounts.ReceiveCounts = append([]int(nil), rep.ReceiveCounts...)
	wrongCounts.ReceiveCounts[2]++
	if err := theory.CheckDoubleCoverExact(g, &wrongCounts); err == nil {
		t.Error("tampered receive counts accepted")
	}
}

func TestCheckDoubleCoverExactRejectsMultiSource(t *testing.T) {
	g := gen.Path(5)
	rep, err := core.Run(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := theory.CheckDoubleCoverExact(g, rep); err == nil {
		t.Fatal("multi-source report accepted")
	}
}

func TestCheckNonBipartiteExactlyTwice(t *testing.T) {
	// Holds on every connected non-bipartite instance from every source.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomNonBipartite(3+rng.Intn(40), 0.08, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		return theory.CheckNonBipartiteExactlyTwice(g, rep) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNonBipartiteExactlyTwiceRejectsBipartiteRuns(t *testing.T) {
	// On bipartite graphs everyone receives once, so the check must fail
	// loudly — guarding against misuse.
	g := gen.Cycle(8)
	if !algo.IsBipartite(g) {
		t.Fatal("C8 should be bipartite")
	}
	rep := mustRun(t, g, 0)
	if err := theory.CheckNonBipartiteExactlyTwice(g, rep); err == nil {
		t.Fatal("bipartite run passed the exactly-twice check")
	}
}
