package theory_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

func TestAnalyzeSequencesTriangle(t *testing.T) {
	// Figure 2 run: R_0={b}, R_1={a,c}, R_2={a,c}, R_3={b}.
	rep := mustRun(t, gen.Cycle(3), 1)
	analysis := theory.AnalyzeSequences(rep)
	// Sequences: a in (1,2), c in (1,2), b in (0,3) -> durations 1,1,3.
	if len(analysis.Sequences) != 3 {
		t.Fatalf("sequences = %v, want 3", analysis.Sequences)
	}
	if analysis.EvenCount != 0 {
		t.Fatalf("Re = %d, want 0", analysis.EvenCount)
	}
	if analysis.MinDuration != 1 || analysis.MaxDuration != 3 {
		t.Fatalf("durations = %d..%d, want 1..3", analysis.MinDuration, analysis.MaxDuration)
	}
	if analysis.DurationHistogram[1] != 2 || analysis.DurationHistogram[3] != 1 {
		t.Fatalf("histogram = %v", analysis.DurationHistogram)
	}
	if _, ok := analysis.MinimalEvenSequence(); ok {
		t.Fatal("found an even sequence in a real run")
	}
}

func TestAnalyzeSequencesBipartiteEmpty(t *testing.T) {
	// On bipartite graphs every node occurs once, so R itself is empty.
	rep := mustRun(t, gen.Grid(4, 5), 3)
	analysis := theory.AnalyzeSequences(rep)
	if len(analysis.Sequences) != 0 {
		t.Fatalf("bipartite run has sequences: %v", analysis.Sequences)
	}
	if analysis.MinDuration != 0 || analysis.MaxDuration != 0 {
		t.Fatal("empty analysis has non-zero durations")
	}
}

func TestSequenceStringAndEnd(t *testing.T) {
	s := theory.Sequence{Node: 4, Start: 2, Duration: 3}
	if s.End() != 5 {
		t.Fatalf("End = %d", s.End())
	}
	if got := s.String(); !strings.Contains(got, "R_2") || !strings.Contains(got, "R_5") {
		t.Fatalf("String = %q", got)
	}
}

func TestMinimalEvenSequencePicksPaperMinimum(t *testing.T) {
	// Doctored report: node 1 at rounds 1 and 5 (d=4), node 2 at rounds
	// 2 and 4 (d=2), node 3 at rounds 1 and 3 (d=2). R* must be node 3's:
	// duration 2 (minimal), start 1 (earliest among duration-2).
	rep := &core.Report{
		Origins:       []graph.NodeID{0},
		ReceiveCounts: make([]int, 4),
		RoundSets: [][]graph.NodeID{
			{1, 3}, // round 1
			{2},    // round 2
			{3},    // round 3
			{2},    // round 4
			{1},    // round 5
		},
	}
	analysis := theory.AnalyzeSequences(rep)
	seq, ok := analysis.MinimalEvenSequence()
	if !ok {
		t.Fatal("no even sequence found")
	}
	if seq.Node != 3 || seq.Start != 1 || seq.Duration != 2 {
		t.Fatalf("R* = %v, want node 3 start 1 duration 2", seq)
	}
	if analysis.EvenCount != 3 {
		t.Fatalf("EvenCount = %d, want 3", analysis.EvenCount)
	}
}

func TestCheckSequenceMachineryAgreesWithGapCheck(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.08, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		return theory.CheckSequenceMachinery(rep) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSequenceMachineryFlagsDoctoredRun(t *testing.T) {
	rep := &core.Report{
		Origins:       []graph.NodeID{0},
		ReceiveCounts: make([]int, 2),
		RoundSets:     [][]graph.NodeID{{1}, {0}}, // origin back at round 2: d=2
	}
	err := theory.CheckSequenceMachinery(rep)
	if err == nil || !strings.Contains(err.Error(), "Re is non-empty") {
		t.Fatalf("err = %v, want Re non-empty", err)
	}
}
