package theory

import (
	"fmt"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// CheckDoubleCoverExact verifies the strongest claim the library makes
// about a single-source run: the full-paper machinery (amnesiac flooding on
// G equals classic flooding on the bipartite double cover of G) predicts the
// run exactly — same termination round, same message total, and the same
// sends in every round.
//
// This subsumes CheckBipartiteExact and the bounds of CheckGeneralBounds:
// the cover distances reduce to BFS distances on bipartite graphs and are
// bounded by 2D+1 in general.
func CheckDoubleCoverExact(g *graph.Graph, rep *core.Report) error {
	if len(rep.Origins) != 1 {
		return fmt.Errorf("theory: double-cover check needs a single origin, got %d", len(rep.Origins))
	}
	source := rep.Origins[0]
	pred := doublecover.Predict(g, source)
	if pred.Rounds != rep.Rounds() {
		return fmt.Errorf("theory: %s from %d: cover predicts termination at round %d, run took %d",
			g, source, pred.Rounds, rep.Rounds())
	}
	if pred.TotalMessages != rep.TotalMessages() {
		return fmt.Errorf("theory: %s from %d: cover predicts %d messages, run sent %d",
			g, source, pred.TotalMessages, rep.TotalMessages())
	}
	if !engine.EqualTraces(pred.Trace, rep.Result.Trace) {
		return fmt.Errorf("theory: %s from %d: predicted trace differs from simulated trace", g, source)
	}
	dist := doublecover.BFS(g, source)
	for v := 0; v < g.N(); v++ {
		want := len(dist.ReceiptRounds(graph.NodeID(v)))
		if got := rep.ReceiveCounts[v]; got != want {
			return fmt.Errorf("theory: %s from %d: node %d received %d times, cover predicts %d",
				g, source, v, got, want)
		}
	}
	return nil
}

// CheckNonBipartiteExactlyTwice verifies the sharp per-node refinement the
// cover yields on connected non-bipartite graphs: every node other than the
// source receives M in exactly two rounds, and the source in exactly one
// (both parities are reachable everywhere, the source's even distance being
// 0). This sharpens the "at most twice" cap of CheckGeneralBounds.
func CheckNonBipartiteExactlyTwice(g *graph.Graph, rep *core.Report) error {
	if len(rep.Origins) != 1 {
		return fmt.Errorf("theory: exactly-twice check needs a single origin, got %d", len(rep.Origins))
	}
	source := rep.Origins[0]
	for v := 0; v < g.N(); v++ {
		want := 2
		if graph.NodeID(v) == source {
			want = 1
		}
		if got := rep.ReceiveCounts[v]; got != want {
			return fmt.Errorf("theory: non-bipartite %s from %d: node %d received %d times, want %d",
				g, source, v, got, want)
		}
	}
	return nil
}
