package theory_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/theory"
)

func mustRun(t *testing.T, g *graph.Graph, src graph.NodeID) *core.Report {
	t.Helper()
	rep, err := core.Run(g, src)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCheckTerminated(t *testing.T) {
	rep := mustRun(t, gen.Path(5), 0)
	if err := theory.CheckTerminated(rep); err != nil {
		t.Fatal(err)
	}
	bad := &core.Report{Result: engine.Result{Terminated: false}}
	if err := theory.CheckTerminated(bad); err == nil {
		t.Fatal("non-terminated report accepted")
	}
}

func TestCheckBipartiteExactAcceptsFamilies(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		src graph.NodeID
	}{
		{gen.Path(9), 0},
		{gen.Path(9), 4},
		{gen.Cycle(12), 3},
		{gen.Grid(4, 7), 11},
		{gen.Hypercube(5), 17},
		{gen.CompleteBinaryTree(5), 0},
		{gen.CompleteBipartite(4, 6), 2},
		{gen.Star(15), 0},
		{gen.Star(15), 3},
	}
	for _, tc := range cases {
		rep := mustRun(t, tc.g, tc.src)
		if err := theory.CheckBipartiteExact(tc.g, rep); err != nil {
			t.Errorf("%s from %d: %v", tc.g, tc.src, err)
		}
	}
}

func TestCheckBipartiteExactRejectsMultiSource(t *testing.T) {
	g := gen.Path(6)
	rep, err := core.Run(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := theory.CheckBipartiteExact(g, rep); err == nil {
		t.Fatal("multi-source report accepted by bipartite check")
	}
}

func TestCheckBipartiteExactCatchesDoctoredReports(t *testing.T) {
	g := gen.Path(5)
	rep := mustRun(t, g, 0)

	tamperRounds := *rep
	tamperRounds.Result.Rounds++
	if err := theory.CheckBipartiteExact(g, &tamperRounds); err == nil ||
		!strings.Contains(err.Error(), "eccentricity") {
		t.Errorf("wrong-rounds report: err = %v, want eccentricity violation", err)
	}

	tamperCounts := *rep
	tamperCounts.ReceiveCounts = append([]int(nil), rep.ReceiveCounts...)
	tamperCounts.ReceiveCounts[2] = 2
	if err := theory.CheckBipartiteExact(g, &tamperCounts); err == nil ||
		!strings.Contains(err.Error(), "exactly once") {
		t.Errorf("double-receipt report: err = %v, want exactly-once violation", err)
	}

	tamperOrigin := *rep
	tamperOrigin.ReceiveCounts = append([]int(nil), rep.ReceiveCounts...)
	tamperOrigin.ReceiveCounts[0] = 1
	if err := theory.CheckBipartiteExact(g, &tamperOrigin); err == nil ||
		!strings.Contains(err.Error(), "origin") {
		t.Errorf("origin-receipt report: err = %v, want origin violation", err)
	}

	tamperFirst := *rep
	tamperFirst.FirstReceive = append([]int(nil), rep.FirstReceive...)
	tamperFirst.FirstReceive[3] = 1
	if err := theory.CheckBipartiteExact(g, &tamperFirst); err == nil ||
		!strings.Contains(err.Error(), "BFS distance") {
		t.Errorf("wrong-distance report: err = %v, want BFS distance violation", err)
	}
}

func TestCheckGeneralBoundsAcceptsNonBipartite(t *testing.T) {
	for _, tc := range []struct {
		g   *graph.Graph
		src graph.NodeID
	}{
		{gen.Cycle(3), 0},
		{gen.Cycle(9), 2},
		{gen.Complete(7), 1},
		{gen.Wheel(9), 0},
		{gen.Petersen(), 5},
		{gen.Lollipop(4, 5), 8},
	} {
		rep := mustRun(t, tc.g, tc.src)
		if err := theory.CheckGeneralBounds(tc.g, rep); err != nil {
			t.Errorf("%s from %d: %v", tc.g, tc.src, err)
		}
	}
}

func TestCheckGeneralBoundsCatchesViolations(t *testing.T) {
	g := gen.Cycle(3)
	rep := mustRun(t, g, 0)

	tooMany := *rep
	tooMany.Result.Rounds = 2*algo.Diameter(g) + 2
	if err := theory.CheckGeneralBounds(g, &tooMany); err == nil ||
		!strings.Contains(err.Error(), "2D+1") {
		t.Errorf("rounds-beyond-bound report: err = %v", err)
	}

	tooFew := *rep
	tooFew.Result.Rounds = 0
	if err := theory.CheckGeneralBounds(g, &tooFew); err == nil {
		t.Error("zero-round covered report accepted")
	}

	triple := *rep
	triple.ReceiveCounts = []int{3, 1, 1}
	if err := theory.CheckGeneralBounds(g, &triple); err == nil ||
		!strings.Contains(err.Error(), "distinct rounds") {
		t.Errorf("triple-receipt report: err = %v", err)
	}

	uncovered := *rep
	uncovered.ReceiveCounts = []int{0, 1, 0} // node 2 never got M
	if err := theory.CheckGeneralBounds(g, &uncovered); err == nil ||
		!strings.Contains(err.Error(), "never received") {
		t.Errorf("uncovered report: err = %v", err)
	}
}

func TestCheckNonBipartiteStrictOnSymmetricFamilies(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Cycle(3), gen.Cycle(11), gen.Complete(9), gen.Wheel(8), gen.Petersen()} {
		rep := mustRun(t, g, 0)
		if err := theory.CheckNonBipartiteStrict(g, rep); err != nil {
			t.Errorf("%s: %v", g, err)
		}
	}
}

func TestCheckOddGapInvariantAcceptsRealRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := []*graph.Graph{
		gen.Cycle(3), gen.Cycle(8), gen.Complete(6), gen.Petersen(),
		gen.Grid(4, 5), gen.RandomNonBipartite(50, 0.06, rng),
	}
	for _, g := range graphs {
		rep := mustRun(t, g, 0)
		if err := theory.CheckOddGapInvariant(rep); err != nil {
			t.Errorf("%s: %v", g, err)
		}
	}
}

func TestCheckOddGapInvariantCatchesEvenGap(t *testing.T) {
	// Doctor a report whose round-sets contain node 7 at rounds 2 and 4.
	rep := &core.Report{
		Origins:       []graph.NodeID{0},
		ReceiveCounts: make([]int, 8),
		RoundSets: [][]graph.NodeID{
			1: {7}, // index 1 -> round 2
		},
	}
	rep.RoundSets = [][]graph.NodeID{{1}, {7}, {3}, {7}} // rounds 1..4
	if err := theory.CheckOddGapInvariant(rep); err == nil ||
		!strings.Contains(err.Error(), "even duration") {
		t.Fatalf("even-gap report: err = %v", err)
	}
}

func TestCheckOddGapIncludesOriginRound0(t *testing.T) {
	// Origin in R_0 and again in R_2 is an even gap.
	rep := &core.Report{
		Origins:       []graph.NodeID{4},
		ReceiveCounts: make([]int, 5),
		RoundSets:     [][]graph.NodeID{{1}, {4}}, // round 2 contains origin
	}
	if err := theory.CheckOddGapInvariant(rep); err == nil {
		t.Fatal("origin even-gap accepted")
	}
}

func TestPredictTermination(t *testing.T) {
	// Bipartite: exact window at e(source).
	g := gen.Grid(3, 5)
	b := theory.PredictTermination(g, 0)
	if !b.Exact || b.Lower != b.Upper || b.Lower != algo.Eccentricity(g, 0) {
		t.Fatalf("bipartite bound = %+v", b)
	}
	// Non-bipartite: e(source) .. 2D+1.
	tri := gen.Cycle(3)
	b = theory.PredictTermination(tri, 0)
	if b.Exact || b.Lower != 1 || b.Upper != 3 {
		t.Fatalf("triangle bound = %+v", b)
	}
}

func TestPredictedWindowAlwaysHolds(t *testing.T) {
	// Property: every measured run lands inside its predicted window.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.08, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		return theory.PredictTermination(g, src).Holds(rep.Rounds())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundHolds(t *testing.T) {
	b := theory.Bound{Lower: 2, Upper: 5}
	for rounds, want := range map[int]bool{1: false, 2: true, 5: true, 6: false} {
		if b.Holds(rounds) != want {
			t.Errorf("Holds(%d) = %t, want %t", rounds, b.Holds(rounds), want)
		}
	}
}
