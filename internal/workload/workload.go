// Package workload is the instance catalog shared by integration tests and
// anyone extending the experiment suite: a curated set of graph instances
// with declared properties (family, bipartiteness, connectivity, symmetry)
// that the rest of the repository can sweep without re-deciding which
// graphs matter.
//
// Catalog entries are constructors, not graphs: random families rebuild
// from the caller's seed so every consumer controls reproducibility.
package workload

import (
	"math/rand"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// Class describes what an instance is for.
type Class int

// Instance classes.
const (
	// PaperFigure instances appear verbatim in the paper.
	PaperFigure Class = iota + 1
	// Structured instances are classical parametrised families.
	Structured
	// Randomized instances are seeded random families.
	Randomized
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case PaperFigure:
		return "paper-figure"
	case Structured:
		return "structured"
	case Randomized:
		return "randomized"
	default:
		return "unknown"
	}
}

// Instance is one catalog entry.
type Instance struct {
	// Name is unique within the catalog.
	Name string
	// Class classifies the instance (paper figure, structured, random).
	Class Class
	// Bipartite and SourceSymmetric declare expected properties; the
	// workload tests verify them against ground truth.
	Bipartite bool
	// SourceSymmetric marks vertex-transitive instances on which every
	// source behaves identically (cycles, cliques, hypercubes, tori,
	// Petersen).
	SourceSymmetric bool
	// Build constructs the graph; random families consume the seed.
	Build func(seed int64) *graph.Graph
}

// fixed adapts a deterministic constructor.
func fixed(g func() *graph.Graph) func(int64) *graph.Graph {
	return func(int64) *graph.Graph { return g() }
}

// Catalog returns the full instance set. The slice is freshly allocated;
// callers may reorder or filter it.
func Catalog() []Instance {
	return []Instance{
		// The paper's figures.
		{Name: "fig1-line", Class: PaperFigure, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.Path(4) })},
		{Name: "fig2-triangle", Class: PaperFigure, Bipartite: false, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Cycle(3) })},
		{Name: "fig3-evenCycle", Class: PaperFigure, Bipartite: true, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Cycle(6) })},

		// Structured bipartite.
		{Name: "path-64", Class: Structured, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.Path(64) })},
		{Name: "evenCycle-64", Class: Structured, Bipartite: true, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Cycle(64) })},
		{Name: "star-33", Class: Structured, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.Star(33) })},
		{Name: "grid-8x13", Class: Structured, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.Grid(8, 13) })},
		{Name: "binaryTree-6", Class: Structured, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.CompleteBinaryTree(6) })},
		{Name: "hypercube-7", Class: Structured, Bipartite: true, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Hypercube(7) })},
		{Name: "completeBipartite-9x14", Class: Structured, Bipartite: true,
			Build: fixed(func() *graph.Graph { return gen.CompleteBipartite(9, 14) })},
		{Name: "evenTorus-6x8", Class: Structured, Bipartite: true, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Torus(6, 8) })},

		// Structured non-bipartite.
		{Name: "oddCycle-65", Class: Structured, Bipartite: false, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Cycle(65) })},
		{Name: "clique-17", Class: Structured, Bipartite: false, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Complete(17) })},
		{Name: "wheel-18", Class: Structured, Bipartite: false,
			Build: fixed(func() *graph.Graph { return gen.Wheel(18) })},
		{Name: "petersen", Class: Structured, Bipartite: false, SourceSymmetric: true,
			Build: fixed(gen.Petersen)},
		{Name: "lollipop-5x12", Class: Structured, Bipartite: false,
			Build: fixed(func() *graph.Graph { return gen.Lollipop(5, 12) })},
		{Name: "barbell-5x9", Class: Structured, Bipartite: false,
			Build: fixed(func() *graph.Graph { return gen.Barbell(5, 9) })},
		{Name: "oddTorus-5x7", Class: Structured, Bipartite: false, SourceSymmetric: true,
			Build: fixed(func() *graph.Graph { return gen.Torus(5, 7) })},

		// Randomized.
		{Name: "randomTree-150", Class: Randomized, Bipartite: true,
			Build: func(seed int64) *graph.Graph {
				return gen.RandomTree(150, rand.New(rand.NewSource(seed)))
			}},
		{Name: "randomBipartite-40x45", Class: Randomized, Bipartite: true,
			Build: func(seed int64) *graph.Graph {
				rng := rand.New(rand.NewSource(seed))
				return gen.Connectify(gen.RandomBipartite(40, 45, 0.06, rng), rng)
			}},
		{Name: "randomConnected-150", Class: Randomized, Bipartite: false, // almost surely
			Build: func(seed int64) *graph.Graph {
				return gen.RandomConnected(150, 0.04, rand.New(rand.NewSource(seed)))
			}},
		{Name: "randomNonBipartite-150", Class: Randomized, Bipartite: false,
			Build: func(seed int64) *graph.Graph {
				return gen.RandomNonBipartite(150, 0.03, rand.New(rand.NewSource(seed)))
			}},
		{Name: "prefAttach-150x3", Class: Randomized, Bipartite: false, // triangles abound
			Build: func(seed int64) *graph.Graph {
				return gen.PreferentialAttachment(150, 3, rand.New(rand.NewSource(seed)))
			}},
	}
}

// Figures returns only the paper-figure instances.
func Figures() []Instance {
	return filter(func(i Instance) bool { return i.Class == PaperFigure })
}

// Bipartites returns the declared-bipartite instances.
func Bipartites() []Instance {
	return filter(func(i Instance) bool { return i.Bipartite })
}

// NonBipartites returns the declared-non-bipartite instances.
func NonBipartites() []Instance {
	return filter(func(i Instance) bool { return !i.Bipartite })
}

func filter(keep func(Instance) bool) []Instance {
	var out []Instance
	for _, inst := range Catalog() {
		if keep(inst) {
			out = append(out, inst)
		}
	}
	return out
}
