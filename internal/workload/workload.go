// Package workload is the instance catalog shared by integration tests and
// anyone extending the experiment suite: a curated set of graph instances
// with declared properties (family, bipartiteness, connectivity, symmetry)
// that the rest of the repository can sweep without re-deciding which
// graphs matter.
//
// Catalog entries are graph specs, not graphs: each instance names its
// topology in the internal/graph/gen spec grammar, and random families
// rebuild from the caller's seed so every consumer controls
// reproducibility. Because entries are specs, the catalog feeds directly
// into scenario.Matrix{Graphs: workload.Specs(...)}.
package workload

import (
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

// Class describes what an instance is for.
type Class int

// Instance classes.
const (
	// PaperFigure instances appear verbatim in the paper.
	PaperFigure Class = iota + 1
	// Structured instances are classical parametrised families.
	Structured
	// Randomized instances are seeded random families.
	Randomized
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case PaperFigure:
		return "paper-figure"
	case Structured:
		return "structured"
	case Randomized:
		return "randomized"
	default:
		return "unknown"
	}
}

// Instance is one catalog entry.
type Instance struct {
	// Name is unique within the catalog.
	Name string
	// Spec is the instance's graph spec (internal/graph/gen grammar);
	// Build constructs it and scenario suites can consume it directly.
	Spec string
	// Class classifies the instance (paper figure, structured, random).
	Class Class
	// Bipartite declares the expected two-colourability; the workload
	// tests verify it against ground truth.
	Bipartite bool
	// SourceSymmetric marks vertex-transitive instances on which every
	// source behaves identically (cycles, cliques, hypercubes, tori,
	// Petersen).
	SourceSymmetric bool
}

// Build constructs the instance's graph; random families consume the seed.
func (i Instance) Build(seed int64) *graph.Graph {
	return gen.MustBuild(i.Spec, seed)
}

// Catalog returns the full instance set. The slice is freshly allocated;
// callers may reorder or filter it.
func Catalog() []Instance {
	return []Instance{
		// The paper's figures.
		{Name: "fig1-line", Spec: "path:n=4", Class: PaperFigure, Bipartite: true},
		{Name: "fig2-triangle", Spec: "cycle:n=3", Class: PaperFigure, Bipartite: false, SourceSymmetric: true},
		{Name: "fig3-evenCycle", Spec: "cycle:n=6", Class: PaperFigure, Bipartite: true, SourceSymmetric: true},

		// Structured bipartite.
		{Name: "path-64", Spec: "path:n=64", Class: Structured, Bipartite: true},
		{Name: "evenCycle-64", Spec: "cycle:n=64", Class: Structured, Bipartite: true, SourceSymmetric: true},
		{Name: "star-33", Spec: "star:n=33", Class: Structured, Bipartite: true},
		{Name: "grid-8x13", Spec: "grid:rows=8,cols=13", Class: Structured, Bipartite: true},
		{Name: "binaryTree-6", Spec: "bintree:levels=6", Class: Structured, Bipartite: true},
		{Name: "hypercube-7", Spec: "hypercube:d=7", Class: Structured, Bipartite: true, SourceSymmetric: true},
		{Name: "completeBipartite-9x14", Spec: "bipartite:a=9,b=14", Class: Structured, Bipartite: true},
		{Name: "evenTorus-6x8", Spec: "torus:rows=6,cols=8", Class: Structured, Bipartite: true, SourceSymmetric: true},

		// Structured non-bipartite.
		{Name: "oddCycle-65", Spec: "cycle:n=65", Class: Structured, Bipartite: false, SourceSymmetric: true},
		{Name: "clique-17", Spec: "complete:n=17", Class: Structured, Bipartite: false, SourceSymmetric: true},
		{Name: "wheel-18", Spec: "wheel:n=18", Class: Structured, Bipartite: false},
		{Name: "petersen", Spec: "petersen", Class: Structured, Bipartite: false, SourceSymmetric: true},
		{Name: "lollipop-5x12", Spec: "lollipop:k=5,path=12", Class: Structured, Bipartite: false},
		{Name: "barbell-5x9", Spec: "barbell:k=5,path=9", Class: Structured, Bipartite: false},
		{Name: "oddTorus-5x7", Spec: "torus:rows=5,cols=7", Class: Structured, Bipartite: false, SourceSymmetric: true},

		// Randomized.
		{Name: "randomTree-150", Spec: "tree:n=150", Class: Randomized, Bipartite: true},
		{Name: "randomBipartite-40x45", Spec: "randbipartite:a=40,b=45,p=0.06", Class: Randomized, Bipartite: true},
		{Name: "randomConnected-150", Spec: "randconnected:n=150,p=0.04", Class: Randomized, Bipartite: false}, // almost surely
		{Name: "randomNonBipartite-150", Spec: "randnonbipartite:n=150,p=0.03", Class: Randomized, Bipartite: false},
		{Name: "prefAttach-150x3", Spec: "prefattach:n=150,m=3", Class: Randomized, Bipartite: false}, // triangles abound
	}
}

// Specs returns the graph specs of the given instances — the bridge into
// scenario.Matrix.Graphs.
func Specs(instances []Instance) []string {
	out := make([]string, len(instances))
	for i, inst := range instances {
		out[i] = inst.Spec
	}
	return out
}

// ModelInstance is one curated execution-model entry: a model spec
// (internal/model grammar) with declared behaviour, mirroring what
// Instance does for graphs. Certifying marks models that are expected to
// produce non-termination certificates on the right graphs (odd cycles
// under the collision delayer, an even cycle with one outage, ...);
// non-certifying entries are controls that always terminate.
type ModelInstance struct {
	// Name is unique within the model catalog.
	Name string
	// Spec is the instance's model spec; scenario suites consume it
	// directly via scenario.Matrix.Models.
	Spec string
	// Certifying declares whether the model can certify non-termination.
	Certifying bool
}

// Models returns the curated execution-model set swept by integration
// tests and model-dimension suites. The slice is freshly allocated.
func Models() []ModelInstance {
	return []ModelInstance{
		// Controls: coincide with the synchronous model.
		{Name: "synchronous", Spec: "sync"},
		{Name: "zeroDelay", Spec: "adversary:sync"},
		{Name: "staticEdges", Spec: "schedule:static"},
		// Termination-preserving perturbations.
		{Name: "uniformDelay-2", Spec: "adversary:uniform:extra=2"},
		{Name: "slowEdge", Spec: "adversary:edge:u=0,v=1,extra=1"},
		// The paper's Figure 5 adversary and the dynamic counterparts.
		{Name: "collisionDelayer", Spec: "adversary:collision", Certifying: true},
		{Name: "firstRoundOutage", Spec: "schedule:outage:round=1,u=0,v=1", Certifying: true},
		{Name: "blinkingEdge", Spec: "schedule:blink:period=2,phase=1", Certifying: true},
		{Name: "alternatingHalves", Spec: "schedule:alternating", Certifying: true},
		// Randomised stressor (consumes the suite seed; no certificates).
		{Name: "randomDelay-3", Spec: "adversary:random:max=3"},
	}
}

// ModelSpecs returns the model specs of the given instances — the bridge
// into scenario.Matrix.Models.
func ModelSpecs(instances []ModelInstance) []string {
	out := make([]string, len(instances))
	for i, inst := range instances {
		out[i] = inst.Spec
	}
	return out
}

// Figures returns only the paper-figure instances.
func Figures() []Instance {
	return filter(func(i Instance) bool { return i.Class == PaperFigure })
}

// Bipartites returns the declared-bipartite instances.
func Bipartites() []Instance {
	return filter(func(i Instance) bool { return i.Bipartite })
}

// NonBipartites returns the declared-non-bipartite instances.
func NonBipartites() []Instance {
	return filter(func(i Instance) bool { return !i.Bipartite })
}

func filter(keep func(Instance) bool) []Instance {
	var out []Instance
	for _, inst := range Catalog() {
		if keep(inst) {
			out = append(out, inst)
		}
	}
	return out
}
