package workload_test

import (
	"testing"

	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/workload"

	// The model catalog's specs address these registries.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/dynamic"
)

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, inst := range workload.Catalog() {
		if inst.Name == "" {
			t.Error("instance with empty name")
		}
		if seen[inst.Name] {
			t.Errorf("duplicate instance name %q", inst.Name)
		}
		seen[inst.Name] = true
	}
}

// TestCatalogSpecsCanonical: every instance is addressed by a registry
// spec in canonical (round-tripping) form, so the catalog feeds directly
// into scenario matrices and spec-keyed result stores.
func TestCatalogSpecsCanonical(t *testing.T) {
	for _, inst := range workload.Catalog() {
		spec, err := gen.Parse(inst.Spec)
		if err != nil {
			t.Errorf("%s: bad spec %q: %v", inst.Name, inst.Spec, err)
			continue
		}
		if got := spec.String(); got != inst.Spec {
			t.Errorf("%s: spec %q is not canonical (want %q)", inst.Name, inst.Spec, got)
		}
	}
	specs := workload.Specs(workload.Figures())
	if len(specs) != 3 || specs[0] != "path:n=4" {
		t.Errorf("Specs(Figures()) = %v", specs)
	}
}

func TestCatalogDeclaredPropertiesHold(t *testing.T) {
	for _, inst := range workload.Catalog() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			g := inst.Build(1)
			if g.N() == 0 {
				t.Fatal("empty instance")
			}
			if !algo.Connected(g) {
				t.Fatal("catalog instance must be connected")
			}
			if got := algo.IsBipartite(g); got != inst.Bipartite {
				t.Fatalf("bipartite = %t, declared %t", got, inst.Bipartite)
			}
		})
	}
}

func TestCatalogBuildersDeterministic(t *testing.T) {
	for _, inst := range workload.Catalog() {
		a, b := inst.Build(7), inst.Build(7)
		if a.N() != b.N() || a.M() != b.M() {
			t.Errorf("%s: same seed built different graphs", inst.Name)
		}
	}
}

func TestFilters(t *testing.T) {
	total := len(workload.Catalog())
	figs := len(workload.Figures())
	bip := len(workload.Bipartites())
	non := len(workload.NonBipartites())
	if figs != 3 {
		t.Errorf("figures = %d, want 3", figs)
	}
	if bip+non != total {
		t.Errorf("bipartite %d + non-bipartite %d != total %d", bip, non, total)
	}
	if bip < 8 || non < 8 {
		t.Errorf("catalog unbalanced: %d bipartite vs %d non-bipartite", bip, non)
	}
}

// TestModelCatalog validates the execution-model catalog: unique names,
// canonical round-trippable specs, buildable instances, and the
// ModelSpecs bridge.
func TestModelCatalog(t *testing.T) {
	seen := map[string]bool{}
	certifying := 0
	for _, inst := range workload.Models() {
		if inst.Name == "" || seen[inst.Name] {
			t.Errorf("bad or duplicate model name %q", inst.Name)
		}
		seen[inst.Name] = true
		spec, err := model.Parse(inst.Spec)
		if err != nil {
			t.Errorf("%s: %v", inst.Name, err)
			continue
		}
		if spec.String() != inst.Spec {
			t.Errorf("%s: spec %q is not canonical (String() = %q)", inst.Name, inst.Spec, spec.String())
		}
		if _, err := model.Build(inst.Spec, 1); err != nil {
			t.Errorf("%s: build: %v", inst.Name, err)
		}
		if inst.Certifying {
			certifying++
		}
	}
	if certifying < 3 {
		t.Errorf("only %d certifying models in the catalog", certifying)
	}
	specs := workload.ModelSpecs(workload.Models())
	if len(specs) != len(workload.Models()) || specs[0] != "sync" {
		t.Fatalf("ModelSpecs bridge wrong: %v", specs)
	}
}

func TestClassString(t *testing.T) {
	if workload.PaperFigure.String() != "paper-figure" ||
		workload.Structured.String() != "structured" ||
		workload.Randomized.String() != "randomized" ||
		workload.Class(99).String() != "unknown" {
		t.Fatal("class strings wrong")
	}
}
