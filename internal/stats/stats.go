// Package stats provides the small summary-statistics toolkit the
// experiment sweeps aggregate with: means, standard deviations, quantiles,
// fractions, and fixed-width histograms. Stdlib only, deterministic, and
// tested against hand-computed values.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := Summary{N: len(sample), Min: sample[0], Max: sample[0]}
	sum := 0.0
	for _, x := range sample {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range sample {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(sample, 0.5)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f med=%.1f max=%.0f",
		s.N, s.Mean, s.Stddev, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between order statistics. It copies and sorts internally;
// an empty sample yields 0.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fraction returns the share of true values, or 0 for an empty sample.
func Fraction(sample []bool) float64 {
	if len(sample) == 0 {
		return 0
	}
	count := 0
	for _, b := range sample {
		if b {
			count++
		}
	}
	return float64(count) / float64(len(sample))
}

// Ints converts an int sample for use with the float64 helpers.
func Ints(sample []int) []float64 {
	out := make([]float64, len(sample))
	for i, x := range sample {
		out[i] = float64(x)
	}
	return out
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // observations below Lo
	Over    int // observations at or above Hi
	samples int
}

// NewHistogram creates a histogram with bins equal-width buckets over
// [lo, hi). It panics on invalid shapes, which indicates a programming
// error in the experiment code.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%.2f,%.2f) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx == len(h.Counts) { // x == Hi boundary via float rounding
			idx--
		}
		h.Counts[idx]++
	}
}

// N returns the number of recorded observations.
func (h *Histogram) N() int {
	return h.samples
}

// Render draws the histogram with unit-scaled bars, one bin per line.
func (h *Histogram) Render(barWidth int) string {
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*width
		bar := strings.Repeat("#", c*barWidth/max)
		fmt.Fprintf(&sb, "[%8.2f..%8.2f) %5d %s\n", lo, lo+width, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&sb, "under: %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&sb, "over: %d\n", h.Over)
	}
	return sb.String()
}
