package stats_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/stats"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestSummarizeKnownSample(t *testing.T) {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5) {
		t.Fatalf("Mean = %f, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almostEqual(s.Stddev, math.Sqrt(32.0/7.0)) {
		t.Fatalf("Stddev = %f, want %f", s.Stddev, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %f/%f", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Fatalf("Median = %f, want 4.5", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := stats.Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := stats.Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stddev != 0 || s.Median != 3 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3})
	if got := s.String(); !strings.Contains(got, "n=3") || !strings.Contains(got, "mean=2.00") {
		t.Fatalf("String = %q", got)
	}
}

func TestQuantile(t *testing.T) {
	sample := []float64{10, 20, 30, 40}
	cases := map[float64]float64{
		0:    10,
		1:    40,
		0.5:  25,
		0.25: 17.5,
		-1:   10,
		2:    40,
	}
	for q, want := range cases {
		if got := stats.Quantile(sample, q); !almostEqual(got, want) {
			t.Errorf("Quantile(%.2f) = %f, want %f", q, got, want)
		}
	}
	if stats.Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	sample := []float64{3, 1, 2}
	stats.Quantile(sample, 0.5)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Fatalf("input mutated: %v", sample)
	}
}

func TestFraction(t *testing.T) {
	if f := stats.Fraction([]bool{true, false, true, true}); !almostEqual(f, 0.75) {
		t.Fatalf("Fraction = %f", f)
	}
	if stats.Fraction(nil) != 0 {
		t.Fatal("empty fraction != 0")
	}
}

func TestInts(t *testing.T) {
	out := stats.Ints([]int{1, 2, 3})
	if len(out) != 3 || out[2] != 3.0 {
		t.Fatalf("Ints = %v", out)
	}
}

func TestHistogram(t *testing.T) {
	h := stats.NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -1, 10, 11} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Fatalf("counts = %v, want %v", h.Counts, wantCounts)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	render := h.Render(20)
	if !strings.Contains(render, "under: 1") || !strings.Contains(render, "over: 2") {
		t.Fatalf("render missing overflow lines:\n%s", render)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	stats.NewHistogram(5, 5, 3)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	// Property: quantiles are monotone in q and bounded by min/max.
	check := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1) // avoid overflow at MinInt64
		}
		n := int(seed%31) + 1
		sample := make([]float64, n)
		x := float64(seed % 1000)
		for i := range sample {
			x = math.Mod(x*1103515245+12345, 1000)
			sample[i] = x
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			cur := stats.Quantile(sample, q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		s := stats.Summarize(sample)
		return stats.Quantile(sample, 0) == s.Min && stats.Quantile(sample, 1) == s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
