package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is per-tenant admission control: a token-bucket rate limit plus
// an in-flight cap per tenant. The shape follows the per-peer accounting of
// block-sync request pools (every peer gets bounded credit; one hot peer
// cannot monopolise the pool) translated to HTTP tenants: the limiter
// answers "may this tenant start another run right now", and the dispatcher
// in queue.go answers "is there capacity for anyone at all".

// TenantLimits bounds one tenant's admission.
type TenantLimits struct {
	// Rate is the sustained request rate in requests/second; <= 0 disables
	// rate limiting for the tenant.
	Rate float64
	// Burst is the token-bucket capacity — how many requests can arrive
	// back-to-back before Rate applies. Min 1 when Rate > 0.
	Burst int
	// MaxInFlight caps the tenant's concurrently admitted runs (running or
	// queued); <= 0 means unlimited.
	MaxInFlight int
}

// Admission errors, matchable with errors.Is.
var (
	// ErrRateLimited means the tenant's token bucket is empty.
	ErrRateLimited = errors.New("service: tenant rate limit exceeded")
	// ErrTooManyInFlight means the tenant is at its in-flight cap.
	ErrTooManyInFlight = errors.New("service: tenant in-flight limit reached")
)

// tenantState is one tenant's bucket: fractional tokens, last refill time,
// and the in-flight count.
type tenantState struct {
	tokens   float64
	last     time.Time
	inFlight int
}

// limiter is the tenant admission ledger. All tenants share one set of
// limits (per-tenant overrides ride in overrides); state is created lazily
// on first sight of a tenant. The clock is injectable for tests.
type limiter struct {
	mu        sync.Mutex
	defaults  TenantLimits
	overrides map[string]TenantLimits
	tenants   map[string]*tenantState
	now       func() time.Time
}

func newLimiter(defaults TenantLimits, overrides map[string]TenantLimits) *limiter {
	return &limiter{
		defaults:  defaults,
		overrides: overrides,
		tenants:   map[string]*tenantState{},
		now:       time.Now,
	}
}

// limitsFor resolves the limits applying to one tenant.
func (l *limiter) limitsFor(tenant string) TenantLimits {
	if lim, ok := l.overrides[tenant]; ok {
		return lim
	}
	return l.defaults
}

// admit takes one admission token for the tenant and counts it in-flight.
// On success the caller must call release exactly once when the run leaves
// the system. On ErrRateLimited the returned duration is how long until a
// token accrues — the Retry-After the handler surfaces.
func (l *limiter) admit(tenant string) (release func(), retryAfter time.Duration, err error) {
	lim := l.limitsFor(tenant)
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.tenants[tenant]
	if !ok {
		st = &tenantState{tokens: float64(max(lim.Burst, 1)), last: l.now()}
		l.tenants[tenant] = st
	}
	if lim.Rate > 0 {
		now := l.now()
		burst := float64(max(lim.Burst, 1))
		st.tokens = min(burst, st.tokens+now.Sub(st.last).Seconds()*lim.Rate)
		st.last = now
		if st.tokens < 1 {
			// Time until the bucket refills to one whole token.
			wait := time.Duration((1 - st.tokens) / lim.Rate * float64(time.Second))
			return nil, wait, fmt.Errorf("%w (tenant %q)", ErrRateLimited, tenant)
		}
	}
	if lim.MaxInFlight > 0 && st.inFlight >= lim.MaxInFlight {
		return nil, 0, fmt.Errorf("%w (tenant %q, cap %d)", ErrTooManyInFlight, tenant, lim.MaxInFlight)
	}
	if lim.Rate > 0 {
		st.tokens--
	}
	st.inFlight++
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			st.inFlight--
			l.mu.Unlock()
		})
	}, 0, nil
}

// inFlight reports one tenant's current in-flight count (for tests and
// stats).
func (l *limiter) inFlight(tenant string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.tenants[tenant]; ok {
		return st.inFlight
	}
	return 0
}
