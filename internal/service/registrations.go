package service

// The service is spec-addressed: requests name protocols, model families,
// and analyses by registry name, and GET /v1/registry promises to
// enumerate everything runnable. Pull in every self-registering package
// here so any embedder of the service (cmd/afsimd, tests) serves the full
// five-axis registry without its own import litany.
import (
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
	_ "amnesiacflood/internal/detect"
	_ "amnesiacflood/internal/dynamic"
	_ "amnesiacflood/internal/faults"
	_ "amnesiacflood/internal/multiflood"
	_ "amnesiacflood/internal/spantree"
)
