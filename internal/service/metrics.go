package service

import (
	"net/http"
	"strconv"
	"time"

	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
)

// This file is the daemon's telemetry: every afsimd_* metric family, the
// request-counting middleware, and the GET /metrics endpoint. All recording
// happens strictly on the observing side of serving decisions — admission,
// dispatch, and run execution read nothing back from the registry — so
// metrics-on serving is byte-identical to metrics-off serving (the
// differential gates in internal/scenario prove the run path; the serving
// path never consults a metric).
//
// Exported families (see internal/service/README.md for the full contract):
//
//	afsimd_requests_total{endpoint,tenant,code}   requests served
//	afsimd_admission_rejections_total{reason}     admission refusals
//	afsimd_queue_wait_seconds                     dispatcher slot waits
//	afsimd_run_seconds                            run wall time
//	afsimd_run_phase_seconds{phase}               build/run/analyze split
//	afsimd_run_rounds                             rounds per run
//	afsimd_run_messages_total                     messages across all runs
//	afsimd_run_timeouts_total                     watchdog-expired runs
//	afsimd_panics_recovered_total                 panics isolated by executeRun
//	afsimd_session_pool_hits_total                pooled-session reuses
//	afsimd_session_pool_builds_total              fresh session builds
//	afsimd_runs_running / afsimd_runs_queued      occupancy (set at scrape)
//	afsimd_sessions_idle                          pool occupancy (at scrape)
//	afsimd_uptime_seconds                         daemon uptime (at scrape)
//
// Sweeps additionally record the scenario_* families (scenario.Telemetry)
// into the same registry.
type serviceMetrics struct {
	reg *obs.Registry

	requests   *obs.CounterVec
	rejections *obs.CounterVec
	queueWait  *obs.Histogram

	runSeconds  *obs.Histogram
	runPhases   *obs.HistogramVec
	runRounds   *obs.Histogram
	runMessages *obs.Counter
	runTimeouts *obs.Counter
	panics      *obs.Counter

	poolHits   *obs.Counter
	poolBuilds *obs.Counter

	running  *obs.Gauge
	queued   *obs.Gauge
	idle     *obs.Gauge
	uptime   *obs.Gauge
	sweepTel *scenario.Telemetry
}

// newServiceMetrics registers the afsimd_* families on reg (idempotent, so
// several Servers may share one registry).
func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg:         reg,
		requests:    reg.CounterVec("afsimd_requests_total", "HTTP requests served, by route pattern, tenant, and status code.", "endpoint", "tenant", "code"),
		rejections:  reg.CounterVec("afsimd_admission_rejections_total", "Requests refused by the admission pipeline, by reason.", "reason"),
		queueWait:   reg.Histogram("afsimd_queue_wait_seconds", "Time admitted requests waited for a dispatcher slot.", obs.LatencyBuckets()),
		runSeconds:  reg.Histogram("afsimd_run_seconds", "Wall-clock duration of executed runs.", obs.LatencyBuckets()),
		runPhases:   reg.HistogramVec("afsimd_run_phase_seconds", "Per-run phase durations (build/run/analyze).", obs.LatencyBuckets(), "phase"),
		runRounds:   reg.Histogram("afsimd_run_rounds", "Rounds per executed run.", obs.RoundBuckets()),
		runMessages: reg.Counter("afsimd_run_messages_total", "Messages sent across all executed runs."),
		runTimeouts: reg.Counter("afsimd_run_timeouts_total", "Runs killed by the per-request watchdog."),
		panics:      reg.Counter("afsimd_panics_recovered_total", "Panics recovered at the run isolation boundary."),
		poolHits:    reg.Counter("afsimd_session_pool_hits_total", "Runs served from a pooled session."),
		poolBuilds:  reg.Counter("afsimd_session_pool_builds_total", "Runs that built a fresh session."),
		running:     reg.Gauge("afsimd_runs_running", "Runs executing right now (set at scrape)."),
		queued:      reg.Gauge("afsimd_runs_queued", "Requests waiting for a dispatcher slot (set at scrape)."),
		idle:        reg.Gauge("afsimd_sessions_idle", "Idle pooled sessions (set at scrape)."),
		uptime:      reg.Gauge("afsimd_uptime_seconds", "Whole seconds since the server was built (set at scrape)."),
		sweepTel:    scenario.NewTelemetry(reg),
	}
}

// recordRun records one executed run's outcome metrics.
func (m *serviceMetrics) recordRun(d time.Duration, rounds, messages int) {
	m.runSeconds.Observe(d.Seconds())
	m.runRounds.Observe(float64(rounds))
	m.runMessages.Add(uint64(messages))
}

// statusRecorder captures the response status for the request counter while
// passing flushes through (streamed responses rely on per-event flushing).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader implements http.ResponseWriter.
func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

// Write implements http.ResponseWriter, defaulting the code like net/http.
func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// Flush implements http.Flusher when the wrapped writer does.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// countRequests is the outermost middleware: it counts every served request
// by matched route pattern, tenant, and status code after the handler
// returns. Unmatched requests count under endpoint "unmatched" — the mux
// decides the label, so the family's cardinality is bounded by the route
// table (times tenants).
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		code := sr.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.requests.With(endpoint, s.tenantOf(r), strconv.Itoa(code)).Inc()
	})
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// registry. Occupancy and uptime gauges are sampled here, at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	s.metrics.running.Set(int64(st.Running))
	s.metrics.queued.Set(int64(st.Queued))
	s.metrics.idle.Set(int64(st.IdleSessions))
	s.metrics.uptime.Set(int64(time.Since(s.started) / time.Second))
	obs.Handler(s.metrics.reg).ServeHTTP(w, r)
}
