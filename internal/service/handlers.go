package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/sim"
)

// This file is the HTTP surface: request decode, admission, and response
// shaping. The execution discipline itself (timeouts, panic isolation,
// pooling) lives in executeRun; the fairness machinery in queue.go and
// tenant.go. Admission order is deliberate: decode and validate first (a
// malformed request consumes no quota), then the tenant's token bucket and
// in-flight cap, then a dispatcher slot (429 with Retry-After when the
// bounded queue is full).

// decodeBody decodes a JSON request body strictly (unknown fields are
// errors, bodies bounded by MaxBodyBytes).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeError shapes one pre-stream failure as a status + JSON body.
func writeError(w http.ResponseWriter, status int, retryAfter time.Duration, err error) {
	resp := ErrorResponse{Error: err.Error()}
	if status == http.StatusGatewayTimeout {
		resp.Outcome = "timeout"
	}
	if retryAfter > 0 {
		// Retry-After is whole seconds; round up so "wait 200ms" does not
		// become "retry immediately".
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		resp.RetryAfterMs = retryAfter.Milliseconds()
	}
	writeJSON(w, status, resp)
}

// admit runs the full admission pipeline for one request: drain check,
// tenant quota, dispatcher slot. On success the returned release frees
// both; on failure the response has already been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), admitted bool) {
	if s.Draining() {
		s.metrics.rejections.With("draining").Inc()
		writeError(w, http.StatusServiceUnavailable, 0, ErrDraining)
		return nil, false
	}
	tenant := s.tenantOf(r)
	tenantRelease, retryAfter, err := s.limiter.admit(tenant)
	if err != nil {
		switch {
		case errors.Is(err, ErrRateLimited):
			s.metrics.rejections.With("rate_limited").Inc()
			writeError(w, http.StatusTooManyRequests, max(retryAfter, time.Second), err)
		case errors.Is(err, ErrTooManyInFlight):
			s.metrics.rejections.With("in_flight_cap").Inc()
			writeError(w, http.StatusTooManyRequests, time.Second, err)
		default:
			s.metrics.rejections.With("limiter_error").Inc()
			writeError(w, http.StatusInternalServerError, 0, err)
		}
		return nil, false
	}
	waitStart := time.Now()
	slotRelease, err := s.disp.acquire(r.Context(), tenant)
	s.metrics.queueWait.ObserveSince(waitStart)
	if err != nil {
		tenantRelease()
		switch {
		case errors.Is(err, ErrQueueFull):
			s.metrics.rejections.With("queue_full").Inc()
			writeError(w, http.StatusTooManyRequests, time.Second, err)
		case errors.Is(err, ErrDraining):
			s.metrics.rejections.With("draining").Inc()
			writeError(w, http.StatusServiceUnavailable, 0, err)
		default: // client hung up while queued
			s.metrics.rejections.With("client_gone").Inc()
			writeError(w, 499, 0, err)
		}
		return nil, false
	}
	return func() { slotRelease(); tenantRelease() }, true
}

// handleRun is POST /v1/run: one spec-addressed simulation, streamed
// (NDJSON/SSE round events then a result event) or unary ("stream":false).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, 0, fmt.Errorf("decoding request: %w", err))
		return
	}
	nr, err := s.normalizeRun(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	if !nr.stream {
		s.runUnary(w, r, nr)
		return
	}
	s.runStreaming(w, r, nr)
}

// runUnary executes the run and answers with one JSON document: 200 with
// the RunResult, 504 on watchdog timeout, 500 on panic or run error.
func (s *Server) runUnary(w http.ResponseWriter, r *http.Request, nr *runSpec) {
	res, g, timedOut, err := s.executeRun(r.Context(), nr, nil)
	switch {
	case timedOut:
		writeError(w, http.StatusGatewayTimeout, 0, fmt.Errorf("run exceeded its %s timeout", nr.timeout))
	case err != nil:
		writeError(w, http.StatusInternalServerError, 0, err)
	default:
		writeJSON(w, http.StatusOK, wireResult(g, nr, res))
	}
}

// runStreaming executes the run streaming per-round events; the terminal
// event is "result" or "error". Once the stream has started the status is
// already 200, so failures surface in-band. A client disconnect is
// observed as a failed event write, which aborts the run via the
// observer's error return (engines stop the run when an observer errors).
func (s *Server) runStreaming(w http.ResponseWriter, r *http.Request, nr *runSpec) {
	ew := newEventWriter(w, streamFormat(r))
	ew.start()
	obs := engine.ObserverFunc(func(rec engine.RoundRecord) (bool, error) {
		if rec.Round%nr.roundEvery != 0 {
			return false, nil
		}
		messages := len(rec.Sends)
		if err := ew.write(&RunEvent{Event: "round", Round: rec.Round, Messages: messages}); err != nil {
			return false, fmt.Errorf("client disconnected: %w", err)
		}
		return false, nil
	})
	res, g, timedOut, err := s.executeRun(r.Context(), nr, obs)
	switch {
	case timedOut:
		ew.write(&RunEvent{Event: "error", Error: fmt.Sprintf("run exceeded its %s timeout", nr.timeout), Outcome: "timeout"})
	case err != nil:
		ew.write(&RunEvent{Event: "error", Error: err.Error()})
	default:
		ew.write(&RunEvent{Event: "result", Result: wireResult(g, nr, res)})
	}
}

// SweepRequest is the body of POST /v1/sweep: a scenario matrix expanded
// to the cross-product of its axes and executed as one admitted unit. The
// response streams one NDJSON/SSE row per cell (a scenario result object)
// and a final {"event":"done"} summary.
type SweepRequest struct {
	// Graphs..Seeds are the matrix axes (scenario.Matrix semantics:
	// zero-valued axes default to the identity; Graphs is mandatory).
	Graphs    []string `json:"graphs"`
	Protocols []string `json:"protocols,omitempty"`
	Engines   []string `json:"engines,omitempty"`
	Models    []string `json:"models,omitempty"`
	// Analyses attach to every cell (a measurement set, not an axis).
	Analyses []string `json:"analyses,omitempty"`
	Seeds    []int64  `json:"seeds,omitempty"`
	// Reps repeats every cell; min 1.
	Reps int `json:"reps,omitempty"`
	// MaxRounds bounds every run; 0 means the engine default.
	MaxRounds int `json:"maxRounds,omitempty"`
	// TimeoutMs bounds each cell's run (scenario watchdog); 0 means the
	// server default, capped at the server maximum.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// SweepEvent is one line of a sweep response.
type SweepEvent struct {
	Event string `json:"event"`
	// Row is one cell's result (Event "row").
	Row *scenario.Result `json:"row,omitempty"`
	// Cells and Failed summarise the sweep (Event "done").
	Cells  int `json:"cells,omitempty"`
	Failed int `json:"failed,omitempty"`
	// Error describes a failed sweep (Event "error").
	Error string `json:"error,omitempty"`
}

// handleSweep is POST /v1/sweep. One sweep holds one dispatcher slot for
// its whole duration (its internal scenario workers are bounded
// separately by SweepWorkers), so a tenant cannot multiply its concurrency
// by sweeping.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, 0, fmt.Errorf("decoding request: %w", err))
		return
	}
	m := scenario.Matrix{
		Graphs:    req.Graphs,
		Protocols: req.Protocols,
		Engines:   req.Engines,
		Models:    req.Models,
		Analyses:  req.Analyses,
		Seeds:     req.Seeds,
		Reps:      req.Reps,
		MaxRounds: req.MaxRounds,
	}
	specs, err := m.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, err)
		return
	}
	for _, gs := range req.Graphs {
		gspec, err := gen.Parse(gs)
		if err != nil {
			writeError(w, http.StatusBadRequest, 0, err)
			return
		}
		if err := checkServableGraph(gspec); err != nil {
			writeError(w, http.StatusBadRequest, 0, err)
			return
		}
	}
	if len(specs) > s.cfg.MaxSweepCells {
		writeError(w, http.StatusBadRequest, 0,
			fmt.Errorf("sweep expands to %d cells, over the %d-cell limit", len(specs), s.cfg.MaxSweepCells))
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	ew := newEventWriter(w, streamFormat(r))
	ew.start()
	sink := &sweepSink{ew: ew}
	runner := &scenario.Runner{
		Workers:    s.cfg.SweepWorkers,
		Sink:       sink,
		RunTimeout: timeout,
		Metrics:    s.metrics.sweepTel,
	}
	// The runner's own panic isolation turns panicking cells into error
	// rows, and the request context cancels the whole sweep when the
	// client hangs up (sink write failures also cancel, via the runner's
	// sink-error propagation).
	results, err := runner.Run(r.Context(), specs)
	failed := 0
	for i := range results {
		if results[i].Err != "" {
			failed++
		}
	}
	if err != nil {
		ew.write(&SweepEvent{Event: "error", Error: err.Error()})
		return
	}
	sink.writeDone(len(results), failed)
}

// sweepSink streams scenario rows to the response as they complete. The
// runner serialises Write calls on the calling goroutine, so no locking.
type sweepSink struct {
	ew *eventWriter
}

// Write implements scenario.Sink; a failed write (client gone) errors the
// sweep, which the runner surfaces and the handler turns into an abort.
func (ss *sweepSink) Write(res scenario.Result) error {
	return ss.ew.write(&SweepEvent{Event: "row", Row: &res})
}

func (ss *sweepSink) writeDone(cells, failed int) {
	ss.ew.write(&SweepEvent{Event: "done", Cells: cells, Failed: failed})
}

// RegistryResponse is GET /v1/registry: every registered value of the five
// spec axes, with parameter declarations — the service's self-description.
type RegistryResponse struct {
	Protocols []string           `json:"protocols"`
	Engines   []string           `json:"engines"`
	Graphs    []RegistryFamily   `json:"graphs"`
	Models    []RegistryModel    `json:"models"`
	Analyses  []RegistryAnalysis `json:"analyses"`
}

// RegistryParam describes one declared parameter.
type RegistryParam struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Default string `json:"default"`
	Doc     string `json:"doc,omitempty"`
}

// RegistryFamily describes one graph family.
type RegistryFamily struct {
	Name   string          `json:"name"`
	Doc    string          `json:"doc,omitempty"`
	Random bool            `json:"random,omitempty"`
	Params []RegistryParam `json:"params,omitempty"`
}

// RegistryModel describes one execution-model family ("sync" has kind
// "sync" and no family).
type RegistryModel struct {
	Kind   string          `json:"kind"`
	Family string          `json:"family,omitempty"`
	Doc    string          `json:"doc,omitempty"`
	Random bool            `json:"random,omitempty"`
	Params []RegistryParam `json:"params,omitempty"`
}

// RegistryAnalysis describes one analysis family and the metric columns it
// emits.
type RegistryAnalysis struct {
	Name    string          `json:"name"`
	Doc     string          `json:"doc,omitempty"`
	Metrics []string        `json:"metrics,omitempty"`
	Params  []RegistryParam `json:"params,omitempty"`
}

// handleRegistry is GET /v1/registry.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	resp := RegistryResponse{
		Protocols: sim.Protocols(),
		Engines:   sim.EngineNames(),
	}
	for _, name := range gen.Families() {
		fam, _ := gen.Lookup(name)
		if fam.Local {
			continue // not servable over the wire (see checkServableGraph)
		}
		resp.Graphs = append(resp.Graphs, RegistryFamily{
			Name: name, Doc: fam.Doc, Random: fam.Random, Params: wireParams(fam.Params),
		})
	}
	resp.Models = append(resp.Models, RegistryModel{Kind: string(model.KindSync), Doc: "the paper's synchronous model (identity model, no parameters)"})
	for _, kind := range []model.Kind{model.KindAdversary, model.KindSchedule} {
		for _, name := range model.Families(kind) {
			info, _ := model.Lookup(kind, name)
			resp.Models = append(resp.Models, RegistryModel{
				Kind: string(kind), Family: name, Doc: info.Doc, Random: info.Random, Params: wireParams(info.Params),
			})
		}
	}
	for _, name := range analysis.Families() {
		fam, _ := analysis.Lookup(name)
		resp.Analyses = append(resp.Analyses, RegistryAnalysis{
			Name: name, Doc: fam.Doc, Metrics: fam.Metrics, Params: wireParams(fam.Params),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireParams converts declared parameters to the wire shape (the Param
// type is shared by all registries via internal/specgrammar).
func wireParams(params []gen.Param) []RegistryParam {
	out := make([]RegistryParam, len(params))
	for i, p := range params {
		out[i] = RegistryParam{Name: p.Name, Kind: p.Kind.String(), Default: p.Default, Doc: p.Doc}
	}
	return out
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// UptimeSeconds is whole seconds since the server was built.
	UptimeSeconds int64 `json:"uptimeSeconds"`
	// Version is the main module's build version ("unknown" for plain
	// source builds without module metadata).
	Version string `json:"version"`
	Stats   Stats  `json:"stats"`
}

// handleHealthz is GET /healthz: 200 {"status":"ok"} while serving, 503
// {"status":"draining"} once Drain has begun — the readiness signal a load
// balancer needs to stop routing before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.started) / time.Second),
		Version:       obs.Version(),
		Stats:         s.Stats(),
	}
	if s.Draining() {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
