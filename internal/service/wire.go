package service

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/model"
	"amnesiacflood/internal/sim"
)

// This file is the service's wire format: spec-addressed requests whose
// axis fields are exactly the canonical spec strings the five registries
// round-trip (internal/specgrammar is the shared grammar kernel), and the
// NDJSON/SSE event stream a run answers with.

// RunRequest is the body of POST /v1/run. Every axis field is a spec string
// in its registry's grammar; omitted axes take the façade defaults
// (protocol amnesiac, engine fast, model sync, origin node 0).
type RunRequest struct {
	// Graph is the graph spec, e.g. "grid:rows=64,cols=64" (mandatory).
	Graph string `json:"graph"`
	// Protocol is a registered protocol name; default "amnesiac".
	Protocol string `json:"protocol,omitempty"`
	// Engine is an engine name (sim.EngineNames); default "fast".
	Engine string `json:"engine,omitempty"`
	// Model is an execution-model spec; default "sync".
	Model string `json:"model,omitempty"`
	// Analyses lists streaming-analysis specs attached to the run.
	Analyses []string `json:"analyses,omitempty"`
	// Origins is the origin node set; empty means node 0.
	Origins []int `json:"origins,omitempty"`
	// Seed drives graph construction and protocol/model randomness.
	Seed int64 `json:"seed,omitempty"`
	// Params carries protocol parameters (sim.WithParam).
	Params map[string]string `json:"params,omitempty"`
	// MaxRounds bounds the run; 0 means the engine default.
	MaxRounds int `json:"maxRounds,omitempty"`
	// TimeoutMs overrides the server's per-run timeout, capped at the
	// server's maximum; 0 means the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Stream selects the response shape: streamed events (default) or a
	// single JSON result document (false).
	Stream *bool `json:"stream,omitempty"`
	// RoundEvery thins the round event stream to every k-th round
	// (default 1 = every round). The result event is always emitted.
	RoundEvery int `json:"roundEvery,omitempty"`
}

// RunEvent is one line of a streamed run response (NDJSON) or one SSE data
// payload. Event is "round" while the run progresses, then exactly one of
// "result" or "error" terminates the stream.
type RunEvent struct {
	Event string `json:"event"`
	// Round/Messages describe one observed round (Event "round").
	Round    int `json:"round,omitempty"`
	Messages int `json:"messages,omitempty"`
	// Result is the final run outcome (Event "result").
	Result *RunResult `json:"result,omitempty"`
	// Error and Outcome describe a failed run (Event "error"); Outcome is
	// "timeout" when the per-run watchdog expired.
	Error   string `json:"error,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

// RunResult is the final row of a run: the engine.Result fields a caller
// can compare against a direct sim run of the same specs, plus the exact
// built-graph identity.
type RunResult struct {
	// Graph is the fully explicit canonical spec of the built instance.
	Graph string `json:"graph"`
	// N and M are the built graph's node and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Protocol, Engine, and Model attribute the run (canonical names).
	Protocol string `json:"protocol"`
	Engine   string `json:"engine"`
	Model    string `json:"model"`
	// Outcome, Rounds, TotalMessages, Lost, Terminated, Stopped, and the
	// certificate fields mirror engine.Result.
	Outcome       string `json:"outcome,omitempty"`
	Rounds        int    `json:"rounds"`
	TotalMessages int    `json:"totalMessages"`
	Lost          int    `json:"lost,omitempty"`
	Terminated    bool   `json:"terminated"`
	Stopped       bool   `json:"stopped,omitempty"`
	CycleStart    int    `json:"cycleStart,omitempty"`
	CycleLength   int    `json:"cycleLength,omitempty"`
	// Metrics holds the merged streaming-analysis metrics of the run
	// ("<family>.<metric>" keys), present when analyses were attached.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallMicros is the server-side wall-clock run time in microseconds
	// (nondeterministic, excluded from any equality contract).
	WallMicros int64 `json:"wallMicros"`
	// Phases splits WallMicros into build/run/analyze (engine.PhaseTimings
	// in microseconds). Like WallMicros it is nondeterministic bookkeeping,
	// excluded from any equality contract.
	Phases *RunPhases `json:"phases,omitempty"`
}

// RunPhases is the wire shape of one run's phase split, in microseconds.
type RunPhases struct {
	BuildMicros   int64 `json:"buildMicros,omitempty"`
	RunMicros     int64 `json:"runMicros,omitempty"`
	AnalyzeMicros int64 `json:"analyzeMicros,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Outcome is "timeout" on 504s, empty otherwise.
	Outcome string `json:"outcome,omitempty"`
	// RetryAfterMs accompanies 429s: how long the client should wait
	// before retrying (also sent as a Retry-After header, in seconds).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// runSpec is a normalised, validated run request: every axis canonicalised
// against its registry, the timeout resolved against the server bounds.
// Two requests spelling the same run differently normalise to the same
// poolKey, so they share a pooled session.
type runSpec struct {
	graph      string // canonical gen spec
	protocol   string // lower-case registered name
	engineName string // canonical engine name
	kind       sim.EngineKind
	model      string   // canonical model spec; "" for sync
	analyses   []string // canonical analysis specs
	origins    []graph.NodeID
	seed       int64
	params     map[string]string
	maxRounds  int
	timeout    time.Duration
	stream     bool
	roundEvery int
}

// normalizeRun validates a RunRequest against the registries and resolves
// defaults. Validation happens before any quota is consumed, so malformed
// requests cost nothing but the parse.
func (s *Server) normalizeRun(req *RunRequest) (*runSpec, error) {
	if strings.TrimSpace(req.Graph) == "" {
		return nil, fmt.Errorf("missing graph spec")
	}
	gspec, err := gen.Parse(req.Graph)
	if err != nil {
		return nil, err
	}
	if err := checkServableGraph(gspec); err != nil {
		return nil, err
	}
	nr := &runSpec{
		graph:      gspec.String(),
		protocol:   strings.ToLower(strings.TrimSpace(req.Protocol)),
		seed:       req.Seed,
		maxRounds:  req.MaxRounds,
		params:     req.Params,
		stream:     req.Stream == nil || *req.Stream,
		roundEvery: req.RoundEvery,
	}
	if nr.protocol == "" {
		nr.protocol = "amnesiac"
	}
	if !registeredProtocol(nr.protocol) {
		return nil, fmt.Errorf("%w %q (registered: %s)", sim.ErrUnknownProtocol, req.Protocol, strings.Join(sim.Protocols(), ", "))
	}
	engName := req.Engine
	if strings.TrimSpace(engName) == "" {
		engName = "fast"
	}
	nr.kind, err = sim.ParseEngine(engName)
	if err != nil {
		return nil, err
	}
	nr.engineName = nr.kind.String()
	if strings.TrimSpace(req.Model) != "" {
		mspec, err := model.Parse(req.Model)
		if err != nil {
			return nil, err
		}
		if !mspec.IsSync() {
			nr.model = mspec.String()
			if nr.protocol != "amnesiac" {
				return nil, fmt.Errorf("model %s runs only the amnesiac protocol (got %q)", nr.model, nr.protocol)
			}
		}
	}
	for _, a := range req.Analyses {
		aspec, err := analysis.Parse(a)
		if err != nil {
			return nil, err
		}
		nr.analyses = append(nr.analyses, aspec.String())
	}
	if nr.maxRounds < 0 {
		return nil, fmt.Errorf("negative maxRounds %d", nr.maxRounds)
	}
	if nr.roundEvery < 1 {
		nr.roundEvery = 1
	}
	nr.origins = make([]graph.NodeID, len(req.Origins))
	for i, o := range req.Origins {
		if o < 0 {
			return nil, fmt.Errorf("negative origin %d", o)
		}
		nr.origins[i] = graph.NodeID(o)
	}
	if len(nr.origins) == 0 {
		nr.origins = []graph.NodeID{0}
	}
	nr.timeout = s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		nr.timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (nr.timeout <= 0 || nr.timeout > s.cfg.MaxTimeout) {
		nr.timeout = s.cfg.MaxTimeout
	}
	return nr, nil
}

// checkServableGraph rejects graph specs the service must not resolve on a
// remote caller's behalf: Local families (edgefile) open server-side paths
// named by the spec, which would hand every tenant a file-existence oracle
// and an arbitrary-file ingestion channel.
func checkServableGraph(gspec gen.Spec) error {
	if fam, ok := gen.Lookup(gspec.Family); ok && fam.Local {
		return fmt.Errorf("graph family %q reads local server files and cannot be requested over the wire", gspec.Family)
	}
	return nil
}

// poolKey identifies the pooled-session configuration a run needs:
// everything but the per-request origins, timeout, and streaming shape
// (origins are rebound per run via sim.Session.RunFrom).
func (nr *runSpec) poolKey() string {
	var b strings.Builder
	b.WriteString(nr.graph)
	b.WriteByte('|')
	b.WriteString(nr.protocol)
	b.WriteByte('|')
	b.WriteString(nr.engineName)
	b.WriteByte('|')
	if nr.model == "" {
		b.WriteString("sync")
	} else {
		b.WriteString(nr.model)
	}
	b.WriteByte('|')
	b.WriteString(strings.Join(nr.analyses, "+"))
	fmt.Fprintf(&b, "|seed=%d|max=%d", nr.seed, nr.maxRounds)
	if len(nr.params) > 0 {
		keys := make([]string, 0, len(nr.params))
		for k := range nr.params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "|p:%s=%s", k, nr.params[k])
		}
	}
	return b.String()
}

// registeredProtocol reports whether name is in the sim protocol registry.
func registeredProtocol(name string) bool {
	for _, p := range sim.Protocols() {
		if p == name {
			return true
		}
	}
	return false
}

// wireResult flattens an engine.Result plus the built graph's identity into
// the final event row.
func wireResult(g graphInfo, nr *runSpec, res engine.Result) *RunResult {
	out := &RunResult{
		Graph:         g.name,
		N:             g.n,
		M:             g.m,
		Protocol:      nr.protocol,
		Engine:        res.Engine,
		Model:         res.Model,
		Outcome:       res.Outcome.String(),
		Rounds:        res.Rounds,
		TotalMessages: res.TotalMessages,
		Lost:          res.Lost,
		Terminated:    res.Terminated,
		Stopped:       res.Stopped,
		Metrics:       res.Metrics,
		WallMicros:    res.WallTime.Microseconds(),
	}
	if res.Certificate != nil {
		out.CycleStart, out.CycleLength = res.Certificate.Start, res.Certificate.Length
	}
	if res.Phases != (engine.PhaseTimings{}) {
		out.Phases = &RunPhases{
			BuildMicros:   res.Phases.Build.Microseconds(),
			RunMicros:     res.Phases.Run.Microseconds(),
			AnalyzeMicros: res.Phases.Analyze.Microseconds(),
		}
	}
	return out
}
