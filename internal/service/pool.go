package service

import (
	"sync"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/sim"
)

// This file is the session pool: pooled sim.Sessions keyed by run
// configuration, so repeated requests for the same (graph, protocol,
// engine, model, analyses, seed, params) reuse one long-lived Session — and
// with it the fast engine's arenas — instead of rebuilding graph and engine
// per request (the RunBatch amortisation, lifted across HTTP requests).
// Sessions are not concurrency-safe, so the pool hands out exclusive
// ownership: get pops or builds, put returns. A session that saw a panic is
// never returned (its arenas may be mid-update); it is simply dropped.

// relayObserver is the indirection that makes pooled sessions streamable:
// the Session is built once with the relay as its observer, and each
// request points the relay at its own per-request observer for the duration
// of its run. A Session runs one request at a time (exclusive ownership),
// so target needs no locking.
type relayObserver struct {
	target engine.RoundObserver
}

// ObserveRound implements engine.RoundObserver.
func (r *relayObserver) ObserveRound(rec engine.RoundRecord) (bool, error) {
	if r.target == nil {
		return false, nil
	}
	return r.target.ObserveRound(rec)
}

// pooledSession is one reusable run context: the built graph, the Session
// over it, and the relay the Session streams through.
type pooledSession struct {
	g     *graph.Graph
	sess  *sim.Session
	relay *relayObserver
}

// sessionPool holds idle sessions per poolKey, bounded by a global cap.
type sessionPool struct {
	mu    sync.Mutex
	idle  map[string][]*pooledSession
	count int // total idle sessions across all keys
	cap   int
	// hits/builds count pool reuses vs. fresh constructions (the pool's
	// hit ratio is hits / (hits + builds)); nil-safe for bare pools.
	hits, builds *obs.Counter
}

func newSessionPool(capacity int, hits, builds *obs.Counter) *sessionPool {
	if capacity < 0 {
		capacity = 0
	}
	return &sessionPool{idle: map[string][]*pooledSession{}, cap: capacity, hits: hits, builds: builds}
}

// get returns an idle session for the run configuration, building one when
// none is pooled. The caller owns the session until it calls put (or drops
// it after a panic).
func (p *sessionPool) get(nr *runSpec) (*pooledSession, error) {
	key := nr.poolKey()
	p.mu.Lock()
	if q := p.idle[key]; len(q) > 0 {
		ps := q[len(q)-1]
		p.idle[key] = q[:len(q)-1]
		p.count--
		p.mu.Unlock()
		if p.hits != nil {
			p.hits.Inc()
		}
		return ps, nil
	}
	p.mu.Unlock()
	if p.builds != nil {
		p.builds.Inc()
	}
	return buildSession(nr)
}

// put returns an idle session to the pool, dropping it when the pool is at
// capacity. The relay target must already be cleared.
func (p *sessionPool) put(nr *runSpec, ps *pooledSession) {
	key := nr.poolKey()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.cap {
		return
	}
	p.idle[key] = append(p.idle[key], ps)
	p.count++
}

// size reports the idle-session count (for stats).
func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// buildSession constructs a fresh graph + Session for one run
// configuration. Origins are deliberately NOT baked in: requests bind them
// per run via Session.RunFrom, which is what lets differently-originated
// requests share one pooled session.
func buildSession(nr *runSpec) (*pooledSession, error) {
	g, err := gen.Build(nr.graph, nr.seed)
	if err != nil {
		return nil, err
	}
	relay := &relayObserver{}
	opts := []sim.Option{
		sim.WithProtocol(nr.protocol),
		sim.WithEngine(nr.kind),
		sim.WithSeed(nr.seed),
		sim.WithMaxRounds(nr.maxRounds),
		sim.WithObserver(relay),
	}
	if nr.model != "" {
		opts = append(opts, sim.WithModel(nr.model))
	}
	if len(nr.analyses) > 0 {
		opts = append(opts, sim.WithAnalysis(nr.analyses...))
	}
	for k, v := range nr.params {
		opts = append(opts, sim.WithParam(k, v))
	}
	sess, err := sim.New(g, opts...)
	if err != nil {
		return nil, err
	}
	return &pooledSession{g: g, sess: sess, relay: relay}, nil
}
