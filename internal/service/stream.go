package service

import (
	"encoding/json"
	"net/http"
	"strings"
)

// This file is the streaming encoder: one RunEvent at a time to the
// response, as NDJSON (default; Content-Type application/x-ndjson, one JSON
// object per line) or Server-Sent Events (when the request Accepts
// text/event-stream; each event a "data: <json>\n\n" frame). Every event is
// flushed immediately so per-round metrics reach the client while the run
// is still flooding.

// streamFormat picks the event encoding from the request's Accept header.
func streamFormat(r *http.Request) (sse bool) {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// eventWriter serialises RunEvents onto one HTTP response.
type eventWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher // nil when the writer cannot flush
	sse     bool
	started bool
}

func newEventWriter(w http.ResponseWriter, sse bool) *eventWriter {
	f, _ := w.(http.Flusher)
	return &eventWriter{w: w, flusher: f, sse: sse}
}

// start writes the stream headers. Idempotent.
func (e *eventWriter) start() {
	if e.started {
		return
	}
	e.started = true
	if e.sse {
		e.w.Header().Set("Content-Type", "text/event-stream")
		e.w.Header().Set("Cache-Control", "no-cache")
	} else {
		e.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	e.w.Header().Set("X-Content-Type-Options", "nosniff")
	e.w.WriteHeader(http.StatusOK)
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

// write emits one event (a RunEvent or SweepEvent) and flushes it. A write
// error means the client is gone; the caller aborts the run.
func (e *eventWriter) write(ev any) error {
	e.start()
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if e.sse {
		if _, err := e.w.Write([]byte("data: ")); err != nil {
			return err
		}
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	tail := "\n"
	if e.sse {
		tail = "\n\n"
	}
	if _, err := e.w.Write([]byte(tail)); err != nil {
		return err
	}
	if e.flusher != nil {
		e.flusher.Flush()
	}
	return nil
}

// writeJSON writes one JSON document with the given status — the unary
// (non-streamed) response shape and every error response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
