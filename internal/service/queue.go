package service

import (
	"context"
	"errors"
	"sync"
)

// This file is the run dispatcher: a fixed pool of execution slots fed by a
// bounded queue of waiting requests, granted fairly across tenants. Each
// tenant gets its own FIFO; grants rotate round-robin over tenants with
// waiters, so a queue-saturating burst from one tenant cannot starve
// another — the per-peer fairness of a block-sync request pool, with
// tenants in the peer seat. When the queue is full the caller gets
// ErrQueueFull immediately (backpressure, surfaced as 429 + Retry-After)
// instead of an unbounded wait.

// Dispatcher errors, matchable with errors.Is.
var (
	// ErrQueueFull means the wait queue is at capacity.
	ErrQueueFull = errors.New("service: run queue full")
	// ErrDraining means the server is shutting down and admits no new runs.
	ErrDraining = errors.New("service: server draining")
)

// ticket is one queued acquisition. ready is closed on grant or drain;
// exactly one of granted/err is set at that point. cancelled marks tickets
// whose waiter gave up (context cancelled) — the granter skips them.
type ticket struct {
	tenant    string
	ready     chan struct{}
	granted   bool
	cancelled bool
	err       error
}

// dispatcher owns the slot pool and the tenant queues.
type dispatcher struct {
	mu       sync.Mutex
	free     int // available slots (running = slots - free)
	slots    int
	depth    int // queue capacity across all tenants
	queued   int
	queues   map[string][]*ticket
	order    []string // round-robin rotation of tenants with waiters
	next     int      // rotation cursor into order
	draining bool
	idle     chan struct{} // closed when draining && running == 0
}

func newDispatcher(slots, depth int) *dispatcher {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &dispatcher{
		free:   slots,
		slots:  slots,
		depth:  depth,
		queues: map[string][]*ticket{},
		idle:   make(chan struct{}),
	}
}

// acquire claims one execution slot for the tenant, queueing up to the
// queue depth when all slots are busy. It returns a release function the
// caller must call exactly once, or an error: ErrQueueFull (bounded-queue
// backpressure), ErrDraining (shutdown), or the context's error if it was
// cancelled while queued.
func (d *dispatcher) acquire(ctx context.Context, tenant string) (release func(), err error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil, ErrDraining
	}
	// Fast path: a free slot and nobody queued ahead.
	if d.free > 0 && d.queued == 0 {
		d.free--
		d.mu.Unlock()
		return d.releaseFunc(), nil
	}
	if d.queued >= d.depth {
		d.mu.Unlock()
		return nil, ErrQueueFull
	}
	t := &ticket{tenant: tenant, ready: make(chan struct{})}
	if len(d.queues[tenant]) == 0 {
		d.order = append(d.order, tenant)
	}
	d.queues[tenant] = append(d.queues[tenant], t)
	d.queued++
	d.mu.Unlock()

	select {
	case <-t.ready:
		if t.err != nil {
			return nil, t.err
		}
		return d.releaseFunc(), nil
	case <-ctx.Done():
		d.mu.Lock()
		if t.granted {
			// The grant raced the cancellation: the slot is ours, hand it
			// straight back so the granter's accounting stays correct.
			d.mu.Unlock()
			d.releaseFunc()()
			return nil, ctx.Err()
		}
		t.cancelled = true
		d.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent slot-release closure handed to
// acquirers.
func (d *dispatcher) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(d.release) }
}

// release returns one slot, granting it to the next queued ticket
// (round-robin across tenants) or back to the free pool.
func (d *dispatcher) release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.nextTicketLocked(); t != nil {
		t.granted = true
		close(t.ready)
		return
	}
	d.free++
	if d.draining && d.free == d.slots {
		close(d.idle)
	}
}

// nextTicketLocked pops the next live ticket in round-robin tenant order,
// dropping cancelled tickets and empty tenant queues as it goes. It returns
// nil when nothing is waiting. Callers hold d.mu.
func (d *dispatcher) nextTicketLocked() *ticket {
	for len(d.order) > 0 {
		if d.next >= len(d.order) {
			d.next = 0
		}
		tenant := d.order[d.next]
		q := d.queues[tenant]
		// Shed cancelled tickets at the head of this tenant's FIFO.
		for len(q) > 0 && q[0].cancelled {
			q = q[1:]
			d.queued--
		}
		if len(q) == 0 {
			delete(d.queues, tenant)
			d.order = append(d.order[:d.next], d.order[d.next+1:]...)
			continue
		}
		t := q[0]
		d.queues[tenant] = q[1:]
		d.queued--
		if len(q) == 1 {
			delete(d.queues, tenant)
			d.order = append(d.order[:d.next], d.order[d.next+1:]...)
		} else {
			d.next++ // rotate past this tenant for the next grant
		}
		return t
	}
	d.next = 0
	return nil
}

// drain stops admitting new work: every queued ticket fails with
// ErrDraining, and the returned channel closes once the last running slot
// is released (immediately if none are running). Safe to call once.
func (d *dispatcher) drain() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.draining {
		d.draining = true
		for _, q := range d.queues {
			for _, t := range q {
				if !t.cancelled {
					t.err = ErrDraining
					close(t.ready)
				}
			}
		}
		d.queues = map[string][]*ticket{}
		d.order = nil
		d.queued = 0
		if d.free == d.slots {
			close(d.idle)
		}
	}
	return d.idle
}

// stats snapshots the dispatcher occupancy.
func (d *dispatcher) stats() (running, queued, slots int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.slots - d.free, d.queued, d.slots
}
