package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitQueued polls until the dispatcher reports n queued tickets.
func waitQueued(t *testing.T, d *dispatcher, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, q, _ := d.stats(); q == n {
			return
		}
		if time.Now().After(deadline) {
			_, q, _ := d.stats()
			t.Fatalf("queued = %d, want %d", q, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// enqueue starts one acquirer that reports its tenant on grant, releases
// immediately, and signals completion.
func enqueue(t *testing.T, d *dispatcher, tenant string, grants chan<- string) {
	t.Helper()
	go func() {
		rel, err := d.acquire(context.Background(), tenant)
		if err != nil {
			grants <- "err:" + err.Error()
			return
		}
		grants <- tenant
		rel()
	}()
}

func TestDispatcherFastPath(t *testing.T) {
	d := newDispatcher(2, 4)
	rel1, err := d.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := d.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if running, queued, slots := d.stats(); running != 2 || queued != 0 || slots != 2 {
		t.Fatalf("stats = %d/%d/%d, want 2/0/2", running, queued, slots)
	}
	rel1()
	rel2()
	rel2() // idempotent
	if running, _, _ := d.stats(); running != 0 {
		t.Fatalf("running = %d after release, want 0", running)
	}
}

func TestDispatcherRoundRobinFairness(t *testing.T) {
	// One slot, held; tenant a queues three tickets before tenant b queues
	// one. Fair dispatch must interleave b after a's first grant instead of
	// draining a's FIFO first.
	d := newDispatcher(1, 8)
	hold, err := d.acquire(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 4)
	for i, tenant := range []string{"a", "a", "a", "b"} {
		enqueue(t, d, tenant, grants)
		waitQueued(t, d, i+1)
	}
	hold()
	var got []string
	for range 4 {
		select {
		case g := <-grants:
			got = append(got, g)
		case <-time.After(2 * time.Second):
			t.Fatalf("grants stalled after %v", got)
		}
	}
	want := []string{"a", "b", "a", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

func TestDispatcherQueueFull(t *testing.T) {
	d := newDispatcher(1, 1)
	rel, err := d.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 1)
	enqueue(t, d, "a", grants)
	waitQueued(t, d, 1)
	if _, err := d.acquire(context.Background(), "b"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("acquire over depth: err = %v, want ErrQueueFull", err)
	}
	rel()
	if g := <-grants; g != "a" {
		t.Fatalf("queued ticket got %q", g)
	}
}

func TestDispatcherCancelWhileQueued(t *testing.T) {
	d := newDispatcher(1, 4)
	rel, err := d.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.acquire(ctx, "b")
		errc <- err
	}()
	waitQueued(t, d, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: err = %v, want context.Canceled", err)
	}
	// Releasing must shed the cancelled ticket and idle the slot.
	rel()
	if running, queued, _ := d.stats(); running != 0 || queued != 0 {
		t.Fatalf("stats after cancel+release = %d running %d queued, want 0/0", running, queued)
	}
	// The slot is reusable.
	rel2, err := d.acquire(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestDispatcherDrain(t *testing.T) {
	d := newDispatcher(1, 4)
	rel, err := d.acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := d.acquire(context.Background(), "b")
		errc <- err
	}()
	waitQueued(t, d, 1)
	idle := d.drain()
	if err := <-errc; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued ticket on drain: err = %v, want ErrDraining", err)
	}
	if _, err := d.acquire(context.Background(), "c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: err = %v, want ErrDraining", err)
	}
	select {
	case <-idle:
		t.Fatal("idle closed while a slot is still held")
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	select {
	case <-idle:
	case <-time.After(2 * time.Second):
		t.Fatal("idle not closed after last release")
	}
}
