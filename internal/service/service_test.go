// Race-enabled integration tests of the simulation service: these drive
// the full HTTP surface through httptest — concurrent tenants, the
// queue-full 429 path, per-request timeouts, panic isolation, mid-stream
// client disconnects, and graceful drain — and assert the serving layer's
// core contract: streamed results are byte-equal to a direct sim run of
// the same specs.
package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/service"
	"amnesiacflood/internal/sim"
)

// The test protocols: slowping never terminates and sleeps per round, so
// tests can hold a run open for as long (and only as long) as they need;
// panicboom panics inside round delivery, exercising panic isolation at
// the exact point protocol code runs. Both are registered once for the
// whole test binary.
func init() {
	sim.Register("slowping", func(spec sim.Spec) (engine.Protocol, error) {
		delay, err := time.ParseDuration(spec.Param("delay", "2ms"))
		if err != nil {
			return nil, err
		}
		return &pingProto{g: spec.Graph, delay: delay}, nil
	})
	sim.Register("panicboom", func(spec sim.Spec) (engine.Protocol, error) {
		return &boomProto{g: spec.Graph}, nil
	})
}

// pingProto bounces one message between node 0 and its first neighbour
// forever: no round is ever empty, so the run ends only by context,
// timeout, or round limit. The per-round sleep paces the stream.
type pingProto struct {
	g     *graph.Graph
	delay time.Duration
}

func (p *pingProto) Name() string { return "slowping" }

func (p *pingProto) Bootstrap() []engine.Send {
	return []engine.Send{{From: 0, To: p.g.Neighbors(0)[0]}}
}

func (p *pingProto) NewNode(v graph.NodeID) engine.NodeAutomaton {
	return func(round int, senders []graph.NodeID) []graph.NodeID {
		if len(senders) == 0 {
			return nil
		}
		time.Sleep(p.delay)
		return senders // bounce straight back
	}
}

// boomProto panics when round 1's delivery reaches the receiving node.
type boomProto struct{ g *graph.Graph }

func (p *boomProto) Name() string { return "panicboom" }

func (p *boomProto) Bootstrap() []engine.Send {
	return []engine.Send{{From: 0, To: p.g.Neighbors(0)[0]}}
}

func (p *boomProto) NewNode(v graph.NodeID) engine.NodeAutomaton {
	return func(round int, senders []graph.NodeID) []graph.NodeID {
		if len(senders) > 0 {
			panic("boom: injected protocol panic")
		}
		return nil
	}
}

// newTestServer boots a Server over httptest with test-friendly defaults
// (generous tenant limits unless the test overrides them).
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Tenant == (service.TenantLimits{}) {
		cfg.Tenant = service.TenantLimits{Rate: 0, MaxInFlight: 0} // unlimited
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postRun POSTs one run request and returns the response.
func postRun(t *testing.T, ts *httptest.Server, tenant string, req service.RunRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readEvents consumes an NDJSON stream to the end.
func readEvents(t *testing.T, r io.Reader) []service.RunEvent {
	t.Helper()
	var events []service.RunEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.RunEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return events
}

// terminal returns the stream's final event, asserting there is one.
func terminal(t *testing.T, events []service.RunEvent) service.RunEvent {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.Event != "result" && last.Event != "error" {
		t.Fatalf("stream ended with %q event, want result or error", last.Event)
	}
	return last
}

func boolp(b bool) *bool { return &b }

// discardLogger silences expected panic logs in tests that inject panics.
func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// directRun executes the reference run the service must match.
func directRun(t *testing.T, graphSpec string, seed int64, analyses []string) engine.Result {
	t.Helper()
	g, err := gen.Build(graphSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithEngine(sim.Fast),
		sim.WithSeed(seed),
		sim.WithAnalysis(analyses...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamedRunMatchesDirectRun is the service's core contract: the
// final metric values of a streamed run are byte-equal (as canonical JSON)
// to a direct sim.New(...).Run of the same specs, and the outcome fields
// agree.
func TestStreamedRunMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	const graphSpec = "grid:rows=8,cols=8"
	analyses := []string{"coverage", "termination"}

	resp := postRun(t, ts, "", service.RunRequest{
		Graph: graphSpec, Engine: "fast", Seed: 7, Analyses: analyses,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	events := readEvents(t, resp.Body)
	last := terminal(t, events)
	if last.Event != "result" {
		t.Fatalf("terminal event = %+v, want result", last)
	}
	got := last.Result

	want := directRun(t, graphSpec, 7, analyses)
	if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages ||
		got.Terminated != want.Terminated || got.Outcome != want.Outcome.String() {
		t.Fatalf("streamed result %+v != direct %+v", got, want)
	}
	gotMetrics, _ := json.Marshal(got.Metrics)
	wantMetrics, _ := json.Marshal(want.Metrics)
	if string(gotMetrics) != string(wantMetrics) {
		t.Fatalf("metrics differ:\n service %s\n direct  %s", gotMetrics, wantMetrics)
	}

	// The stream carried per-round progress, not just the result.
	rounds := 0
	for _, ev := range events {
		if ev.Event == "round" {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatal("no round events streamed")
	}
}

// TestUnaryRunMatchesDirectRun checks the "stream":false shape against the
// same reference.
func TestUnaryRunMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp := postRun(t, ts, "", service.RunRequest{
		Graph: "cycle:n=65", Engine: "fast", Seed: 3,
		Analyses: []string{"termination"}, Stream: boolp(false),
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got service.RunResult
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := directRun(t, "cycle:n=65", 3, []string{"termination"})
	if got.Rounds != want.Rounds || got.TotalMessages != want.TotalMessages {
		t.Fatalf("unary result %+v != direct %+v", got, want)
	}
	gm, _ := json.Marshal(got.Metrics)
	wm, _ := json.Marshal(want.Metrics)
	if string(gm) != string(wm) {
		t.Fatalf("metrics differ: %s vs %s", gm, wm)
	}
	if got.N != 65 {
		t.Fatalf("graph N = %d, want 65", got.N)
	}
}

// TestConcurrentTenants hammers the server from several tenants at once —
// run with -race, this is the data-race gate over pool, dispatcher, and
// limiter.
func TestConcurrentTenants(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := range 24 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", i%3)
			resp := postRun(t, ts, tenant, service.RunRequest{
				Graph: "grid:rows=6,cols=6", Engine: "fast",
				Seed: int64(i % 2), Analyses: []string{"termination"},
			})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("tenant %s: status %d", tenant, resp.StatusCode)
				return
			}
			if last := terminal(t, readEvents(t, resp.Body)); last.Event != "result" {
				errs <- fmt.Errorf("tenant %s: terminal %+v", tenant, last)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueueFullBackpressure saturates a 1-slot, 1-deep server and asserts
// the overflow answers 429 with Retry-After while admitted runs complete
// and the server keeps serving afterwards.
func TestQueueFullBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1, QueueDepth: 1})

	// Occupy the only slot with a run that ends by watchdog in 400ms.
	slow := make(chan service.RunEvent, 1)
	go func() {
		resp := postRun(t, ts, "hog", service.RunRequest{
			Graph: "cycle:n=8", Protocol: "slowping", Engine: "sequential",
			TimeoutMs: 400, Params: map[string]string{"delay": "1ms"},
		})
		defer resp.Body.Close()
		slow <- terminal(t, readEvents(t, resp.Body))
	}()
	waitFor(t, "slot occupied", func() bool { return srv.Stats().Running == 1 })

	// Fill the queue, then overflow it.
	var wg sync.WaitGroup
	codes := make(chan int, 6)
	var sawRetryAfter bool
	var mu sync.Mutex
	for i := range 6 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postRun(t, ts, fmt.Sprintf("burst-%d", i), service.RunRequest{
				Graph: "cycle:n=8", Engine: "fast", Stream: boolp(false),
			})
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			codes <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				if resp.Header.Get("Retry-After") != "" {
					sawRetryAfter = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(codes)
	var ok200, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d in burst", c)
		}
	}
	if rejected == 0 {
		t.Fatal("burst over a full queue produced no 429s")
	}
	if !sawRetryAfter {
		t.Fatal("429 responses carried no Retry-After header")
	}

	// The hog's stream terminated by watchdog, and the server still serves.
	if last := <-slow; last.Event != "error" || last.Outcome != "timeout" {
		t.Fatalf("hog terminal = %+v, want timeout error", last)
	}
	resp := postRun(t, ts, "after", service.RunRequest{Graph: "cycle:n=8", Engine: "fast", Stream: boolp(false)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst run status = %d, want 200", resp.StatusCode)
	}
}

// TestPerRequestTimeout asserts the watchdog produces the structured
// timeout shape in both response modes while the daemon stays up.
func TestPerRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	longRun := service.RunRequest{
		Graph: "cycle:n=8", Protocol: "slowping", Engine: "sequential",
		TimeoutMs: 150, Params: map[string]string{"delay": "1ms"},
	}

	// Unary: 504 with a structured body.
	unary := longRun
	unary.Stream = boolp(false)
	resp := postRun(t, ts, "", unary)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unary timeout status = %d, want 504", resp.StatusCode)
	}
	var eresp service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Outcome != "timeout" || eresp.Error == "" {
		t.Fatalf("timeout body = %+v, want outcome timeout with message", eresp)
	}

	// Streaming: rounds flow, then a terminal error event with outcome
	// timeout.
	resp2 := postRun(t, ts, "", longRun)
	defer resp2.Body.Close()
	events := readEvents(t, resp2.Body)
	last := terminal(t, events)
	if last.Event != "error" || last.Outcome != "timeout" {
		t.Fatalf("stream terminal = %+v, want timeout error", last)
	}
	if len(events) < 2 {
		t.Fatalf("timeout stream carried %d events, want rounds before the error", len(events))
	}
}

// TestPanicIsolation runs a protocol that panics mid-round: the response
// must be a 500 with a structured body (or an in-stream error event), and
// the daemon must keep serving unrelated runs afterwards.
func TestPanicIsolation(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Logger: discardLogger()})

	unary := service.RunRequest{
		Graph: "cycle:n=8", Protocol: "panicboom", Engine: "sequential", Stream: boolp(false),
	}
	resp := postRun(t, ts, "", unary)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic run status = %d, want 500", resp.StatusCode)
	}
	var eresp service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eresp.Error, "panicked") {
		t.Fatalf("panic body = %+v, want a 'panicked' message", eresp)
	}

	// Streaming shape: terminal error event.
	streaming := unary
	streaming.Stream = nil
	resp2 := postRun(t, ts, "", streaming)
	defer resp2.Body.Close()
	if last := terminal(t, readEvents(t, resp2.Body)); last.Event != "error" || !strings.Contains(last.Error, "panicked") {
		t.Fatalf("streamed panic terminal = %+v", last)
	}

	// The daemon survived: slots all free, healthy, and a normal run works.
	if got := srv.Stats().Running; got != 0 {
		t.Fatalf("running = %d after panics, want 0", got)
	}
	resp3 := postRun(t, ts, "", service.RunRequest{Graph: "grid:rows=4,cols=4", Engine: "fast", Stream: boolp(false)})
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-panic run status = %d, want 200", resp3.StatusCode)
	}
}

// TestClientDisconnectCancelsRun hangs up mid-stream and asserts the
// server-side run is cancelled (the slot frees) rather than running to its
// timeout.
func TestClientDisconnectCancelsRun(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{DefaultTimeout: 30 * time.Second})
	body, _ := json.Marshal(service.RunRequest{
		Graph: "cycle:n=8", Protocol: "slowping", Engine: "sequential",
		Params: map[string]string{"delay": "1ms"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read one round event to prove the run is streaming, then hang up.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event before disconnect: %v", sc.Err())
	}
	waitFor(t, "run occupying a slot", func() bool { return srv.Stats().Running == 1 })
	cancel()

	// The run must be cancelled well before its 30s timeout.
	waitFor(t, "slot freed after disconnect", func() bool { return srv.Stats().Running == 0 })
}

// TestGracefulDrain starts an in-flight streamed run, drains, and asserts:
// healthz flips to 503, new runs are refused, the in-flight stream gets
// its terminal event, and Drain returns cleanly.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{})

	finished := make(chan service.RunEvent, 1)
	go func() {
		resp := postRun(t, ts, "", service.RunRequest{
			Graph: "cycle:n=8", Protocol: "slowping", Engine: "sequential",
			TimeoutMs: 400, Params: map[string]string{"delay": "1ms"},
		})
		defer resp.Body.Close()
		finished <- terminal(t, readEvents(t, resp.Body))
	}()
	waitFor(t, "run in flight", func() bool { return srv.Stats().Running == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	waitFor(t, "draining flag", srv.Draining)

	// Readiness flips; new work is refused with 503.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
	rresp := postRun(t, ts, "", service.RunRequest{Graph: "cycle:n=8", Stream: boolp(false)})
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining = %d, want 503", rresp.StatusCode)
	}

	// The in-flight stream completes (watchdog at 400ms), then Drain
	// returns without error.
	if last := <-finished; last.Event != "error" || last.Outcome != "timeout" {
		t.Fatalf("in-flight terminal = %+v, want its own timeout", last)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := srv.Stats().Running; got != 0 {
		t.Fatalf("running after drain = %d", got)
	}
}

// TestTenantRateLimit checks the token bucket surfaces as 429 +
// Retry-After.
func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, service.Config{
		Tenant: service.TenantLimits{Rate: 0.01, Burst: 1, MaxInFlight: 8},
	})
	quick := service.RunRequest{Graph: "cycle:n=8", Engine: "fast", Stream: boolp(false)}
	resp1 := postRun(t, ts, "limited", quick)
	defer resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", resp1.StatusCode)
	}
	resp2 := postRun(t, ts, "limited", quick)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eresp service.ErrorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.RetryAfterMs <= 0 {
		t.Fatalf("RetryAfterMs = %d, want > 0", eresp.RetryAfterMs)
	}
	// A different tenant has its own bucket.
	resp3 := postRun(t, ts, "fresh", quick)
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fresh tenant status = %d, want 200", resp3.StatusCode)
	}
}

// TestTenantInFlightCap checks the per-tenant concurrency cap while other
// tenants keep running.
func TestTenantInFlightCap(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{
		Workers: 4,
		Tenant:  service.TenantLimits{MaxInFlight: 1},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postRun(t, ts, "capped", service.RunRequest{
			Graph: "cycle:n=8", Protocol: "slowping", Engine: "sequential",
			TimeoutMs: 500, Params: map[string]string{"delay": "1ms"},
		})
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()
	waitFor(t, "first run in flight", func() bool { return srv.Stats().Running == 1 })

	resp := postRun(t, ts, "capped", service.RunRequest{Graph: "cycle:n=8", Stream: boolp(false)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d, want 429", resp.StatusCode)
	}
	other := postRun(t, ts, "other", service.RunRequest{Graph: "cycle:n=8", Stream: boolp(false)})
	defer other.Body.Close()
	if other.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d, want 200", other.StatusCode)
	}
	<-done
}

// TestSweep drives POST /v1/sweep and checks row/done accounting.
func TestSweep(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body, _ := json.Marshal(service.SweepRequest{
		Graphs:   []string{"cycle:n=9", "grid:rows=3,cols=3"},
		Engines:  []string{"fast", "sequential"},
		Analyses: []string{"termination"},
		Seeds:    []int64{1, 2},
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rb, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, rb)
	}
	var rows, cells, failed int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "row":
			rows++
			if ev.Row == nil {
				t.Fatal("row event without row")
			}
		case "done":
			sawDone, cells, failed = true, ev.Cells, ev.Failed
		case "error":
			t.Fatalf("sweep error event: %s", ev.Error)
		}
	}
	const wantCells = 2 * 2 * 2 // graphs × engines × seeds
	if !sawDone || rows != wantCells || cells != wantCells || failed != 0 {
		t.Fatalf("sweep rows=%d cells=%d failed=%d done=%v, want %d/%d/0/true",
			rows, cells, failed, sawDone, wantCells, wantCells)
	}
}

// TestSweepRejectsLocalFamily: sweeps, like runs, must not resolve graph
// families that read server-side paths on a remote caller's behalf.
func TestSweepRejectsLocalFamily(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body, _ := json.Marshal(service.SweepRequest{
		Graphs: []string{"cycle:n=9", "edgefile:path=/etc/passwd"},
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		rb, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status = %d, want 400 (body %s)", resp.StatusCode, rb)
	}
	var eresp service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil || !strings.Contains(eresp.Error, "edgefile") {
		t.Fatalf("error body %+v (err %v), want mention of edgefile", eresp, err)
	}
}

// TestRegistryEndpoint asserts all five axes are enumerated.
func TestRegistryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg service.RegistryResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Protocols) == 0 || len(reg.Engines) != 5 || len(reg.Graphs) == 0 ||
		len(reg.Models) == 0 || len(reg.Analyses) == 0 {
		t.Fatalf("registry incomplete: %d protocols, %d engines, %d graphs, %d models, %d analyses",
			len(reg.Protocols), len(reg.Engines), len(reg.Graphs), len(reg.Models), len(reg.Analyses))
	}
	var hasAmnesiac bool
	for _, p := range reg.Protocols {
		if p == "amnesiac" {
			hasAmnesiac = true
		}
	}
	if !hasAmnesiac {
		t.Fatal("registry misses the amnesiac protocol")
	}
	if reg.Models[0].Kind != "sync" {
		t.Fatalf("first model = %+v, want sync", reg.Models[0])
	}
	// Local families are rejected by the run/sweep endpoints, so the
	// registry must not advertise them as runnable.
	for _, g := range reg.Graphs {
		if g.Name == "edgefile" {
			t.Fatal("registry advertises the local-only edgefile family")
		}
	}
}

// TestSessionPoolReuse checks that identical requests share a pooled
// session and still produce identical results.
func TestSessionPoolReuse(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{})
	req := service.RunRequest{
		Graph: "grid:rows=8,cols=8", Engine: "fast", Seed: 5,
		Analyses: []string{"coverage"}, Stream: boolp(false),
	}
	var results [2]service.RunResult
	for i := range 2 {
		resp := postRun(t, ts, "", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status = %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if srv.Stats().IdleSessions == 0 {
		t.Fatal("no session pooled after a completed run")
	}
	results[0].WallMicros, results[1].WallMicros = 0, 0
	results[0].Phases, results[1].Phases = nil, nil
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[1])
	if string(a) != string(b) {
		t.Fatalf("pooled rerun differs:\n%s\n%s", a, b)
	}
}

// TestBadRequests covers the 400 family: malformed JSON, unknown specs,
// invalid fields.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"graph": `},
		{"unknown field", `{"graph":"cycle:n=8","nope":1}`},
		{"missing graph", `{}`},
		{"unknown family", `{"graph":"doughnut:n=8"}`},
		{"bad param", `{"graph":"cycle:n=eight"}`},
		{"unknown protocol", `{"graph":"cycle:n=8","protocol":"gossip"}`},
		{"unknown engine", `{"graph":"cycle:n=8","engine":"warp"}`},
		{"bad model", `{"graph":"cycle:n=8","model":"adversary:nope"}`},
		{"bad analysis", `{"graph":"cycle:n=8","analyses":["vibes"]}`},
		{"negative origin", `{"graph":"cycle:n=8","origins":[-1]}`},
		{"model x protocol", `{"graph":"cycle:n=8","protocol":"classic","model":"adversary:collision"}`},
		{"local family", `{"graph":"edgefile:path=/etc/passwd"}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				rb, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, rb)
			}
			var eresp service.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil || eresp.Error == "" {
				t.Fatalf("400 without structured body (err %v)", err)
			}
		})
	}
}

// TestSSEFormat checks the Accept-negotiated SSE framing.
func TestSSEFormat(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	body, _ := json.Marshal(service.RunRequest{Graph: "cycle:n=9", Engine: "fast"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "data: ") || !strings.Contains(string(raw), "\n\n") {
		t.Fatalf("SSE framing missing in %q", raw[:min(len(raw), 120)])
	}
}

// TestMetricsEndpoint drives one unary run, one sweep, and one rejected
// request through the daemon, then scrapes GET /metrics and asserts the
// telemetry families fired: request counts labeled by endpoint/tenant/code,
// run latency and phase histograms, pool counters, occupancy gauges, the
// sweep's scenario_* rows, and healthz's uptime/version satellites.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{})
	_ = srv

	resp := postRun(t, ts, "acme", service.RunRequest{Graph: "grid:rows=8,cols=8", Engine: "fast", Stream: boolp(false)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	sweepBody, _ := json.Marshal(map[string]any{"graphs": []string{"cycle:n=8"}, "seeds": []int64{1}})
	sresp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(string(sweepBody)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`afsimd_requests_total{endpoint="POST /v1/run",tenant="acme",code="200"} 1`,
		`afsimd_requests_total{endpoint="POST /v1/sweep",tenant="default",code="200"} 1`,
		"afsimd_run_seconds_count 1",
		`afsimd_run_phase_seconds_count{phase="run"} 1`,
		"afsimd_session_pool_builds_total 1",
		"afsimd_uptime_seconds",
		"scenario_rows_total",
		"afsimd_queue_wait_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}

	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health service.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Version == "" {
		t.Fatalf("healthz = %+v, want ok status and a version", health)
	}
}
