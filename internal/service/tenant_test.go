package service

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is an injectable clock for deterministic refill tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestLimiterTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := newLimiter(TenantLimits{Rate: 2, Burst: 2}, nil)
	l.now = clk.now

	// Burst admits two back-to-back; the third is rate limited with a
	// positive Retry-After (half a second at 2 req/s).
	for i := range 2 {
		rel, _, err := l.admit("t")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rel()
	}
	_, retry, err := l.admit("t")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket empty: err = %v, want ErrRateLimited", err)
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}

	// One token accrues after 500ms at 2/s.
	clk.advance(500 * time.Millisecond)
	rel, _, err := l.admit("t")
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	rel()

	// The bucket never exceeds Burst: a long idle period still admits only
	// Burst back-to-back requests.
	clk.advance(time.Hour)
	for i := range 2 {
		if rel, _, err := l.admit("t"); err != nil {
			t.Fatalf("post-idle admit %d: %v", i, err)
		} else {
			rel()
		}
	}
	if _, _, err := l.admit("t"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-idle burst exceeded: err = %v, want ErrRateLimited", err)
	}
}

func TestLimiterInFlightCap(t *testing.T) {
	l := newLimiter(TenantLimits{MaxInFlight: 2}, nil) // Rate 0: no rate limit
	rel1, _, err := l.admit("t")
	if err != nil {
		t.Fatal(err)
	}
	rel2, _, err := l.admit("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.admit("t"); !errors.Is(err, ErrTooManyInFlight) {
		t.Fatalf("over cap: err = %v, want ErrTooManyInFlight", err)
	}
	// Another tenant has its own ledger.
	relOther, _, err := l.admit("other")
	if err != nil {
		t.Fatalf("other tenant blocked by t's cap: %v", err)
	}
	relOther()
	rel1()
	rel1() // idempotent: must not free a second count
	if got := l.inFlight("t"); got != 1 {
		t.Fatalf("inFlight after one release (double-called) = %d, want 1", got)
	}
	rel2()
	if got := l.inFlight("t"); got != 0 {
		t.Fatalf("inFlight = %d, want 0", got)
	}
}

func TestLimiterOverrides(t *testing.T) {
	l := newLimiter(TenantLimits{MaxInFlight: 1},
		map[string]TenantLimits{"vip": {MaxInFlight: 2}})
	relA, _, err := l.admit("plain")
	if err != nil {
		t.Fatal(err)
	}
	defer relA()
	if _, _, err := l.admit("plain"); !errors.Is(err, ErrTooManyInFlight) {
		t.Fatalf("plain over cap: err = %v", err)
	}
	rel1, _, err := l.admit("vip")
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	rel2, _, err := l.admit("vip")
	if err != nil {
		t.Fatalf("vip second admit: %v", err)
	}
	defer rel2()
}
