// Package service is the serving layer over the sim façade: an HTTP/JSON
// daemon (cmd/afsimd) that accepts spec-addressed simulation requests —
// graph, protocol, engine, execution model, and analyses all named by the
// same canonical spec strings the registries round-trip — executes them
// over a pool of reusable sim sessions, and streams per-round analysis
// events back as NDJSON or SSE.
//
// The serving discipline is the point, not the transport: per-request
// timeouts via derived contexts, panic isolation (a panicking protocol is a
// 500 response, never a crashed daemon), per-tenant token-bucket admission
// control with in-flight caps, and a bounded run queue with fair
// round-robin dispatch across tenants — so a queue-saturating burst from
// one tenant backpressures (429 + Retry-After) without starving anyone
// else. The same per-round observer seams that make runs cancellable and
// analysable (engine.RoundObserver, context per round) are what make them
// streamable here; the pool reuses fastengine arenas across requests the
// way RunBatch reuses them across sweep cells.
//
// Endpoints: POST /v1/run (one run, streamed or unary), POST /v1/sweep (a
// scenario matrix, streamed rows), GET /v1/registry (all five axes),
// GET /healthz. See internal/service/README.md for the wire reference.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/obs"
)

// Config parameterises a Server. The zero value is usable: every field
// documents its default.
type Config struct {
	// Workers is the execution slot count — how many runs execute
	// concurrently across all tenants. Default min(GOMAXPROCS, 8).
	Workers int
	// QueueDepth bounds the wait queue across all tenants; a full queue
	// answers 429. Default 64; 0 keeps the default (use a negative value
	// for an unbuffered no-queue server).
	QueueDepth int
	// DefaultTimeout bounds each run when the request doesn't set one.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-chosen timeouts. Default 5m.
	MaxTimeout time.Duration
	// PoolSessions caps idle pooled sessions across all configurations.
	// Default 64.
	PoolSessions int
	// Tenant is the default per-tenant admission policy. Default: 64
	// requests/s sustained, burst 128, 16 in-flight.
	Tenant TenantLimits
	// TenantOverrides replaces the default policy for named tenants.
	TenantOverrides map[string]TenantLimits
	// TenantHeader names the header carrying the tenant identity.
	// Default "X-Tenant"; absent headers fall back to tenant "default".
	TenantHeader string
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// MaxSweepCells bounds one sweep's expanded matrix. Default 4096.
	MaxSweepCells int
	// SweepWorkers bounds the scenario workers one sweep uses internally
	// (a sweep occupies one dispatcher slot regardless). Default 4.
	SweepWorkers int
	// Logger receives serving-discipline events (panics, drain) as
	// structured records. Default slog.Default(); use
	// slog.New(slog.DiscardHandler) to silence.
	Logger *slog.Logger
	// Metrics is the registry the server records its afsimd_* families
	// into and exposes on GET /metrics. Default: a fresh private registry
	// (the server always records; sharing one registry across servers or
	// with other subsystems is what this hook is for).
	Metrics *obs.Registry
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.PoolSessions <= 0 {
		c.PoolSessions = 64
	}
	if c.Tenant == (TenantLimits{}) {
		c.Tenant = TenantLimits{Rate: 64, Burst: 128, MaxInFlight: 16}
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 4096
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 4
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Server is the simulation service. Build one with New, mount Handler on an
// http.Server, and call Drain before exit.
type Server struct {
	cfg      Config
	limiter  *limiter
	disp     *dispatcher
	pool     *sessionPool
	metrics  *serviceMetrics
	started  time.Time
	mu       sync.Mutex
	draining bool
}

// New builds a Server from the config (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		limiter: newLimiter(cfg.Tenant, cfg.TenantOverrides),
		disp:    newDispatcher(cfg.Workers, cfg.QueueDepth),
		metrics: newServiceMetrics(cfg.Metrics),
		started: time.Now(),
	}
	s.pool = newSessionPool(cfg.PoolSessions, s.metrics.poolHits, s.metrics.poolBuilds)
	return s
}

// Handler returns the service's route table, wrapped in the
// request-counting middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.countRequests(mux)
}

// Drain gracefully shuts the server down: new runs are refused with 503,
// queued runs fail with ErrDraining, and Drain returns once every in-flight
// run has finished (or ctx expires, returning its error). The HTTP listener
// itself is the caller's to close — the intended order is Drain, then
// http.Server.Shutdown, so in-flight streams complete before the listener
// dies.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cfg.Logger.Info("service: draining", "running", s.running(), "queued", s.queuedCount())
	select {
	case <-s.disp.drain():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats is a snapshot of server occupancy.
type Stats struct {
	Running      int `json:"running"`
	Queued       int `json:"queued"`
	Slots        int `json:"slots"`
	IdleSessions int `json:"idleSessions"`
}

// Stats snapshots the server occupancy.
func (s *Server) Stats() Stats {
	running, queued, slots := s.disp.stats()
	return Stats{Running: running, Queued: queued, Slots: slots, IdleSessions: s.pool.size()}
}

func (s *Server) running() int { r, _, _ := s.disp.stats(); return r }

func (s *Server) queuedCount() int { _, q, _ := s.disp.stats(); return q }

// tenantOf extracts the request's tenant identity.
func (s *Server) tenantOf(r *http.Request) string {
	if t := r.Header.Get(s.cfg.TenantHeader); t != "" {
		return t
	}
	return "default"
}

// errPanic wraps a recovered panic from protocol/engine code.
type errPanic struct {
	val   any
	stack []byte
}

func (e *errPanic) Error() string { return fmt.Sprintf("run panicked: %v", e.val) }

// executeRun runs one normalised request on a pooled session, streaming
// rounds to obs (may be nil). It owns the serving discipline around the
// run:
//
//   - per-request timeout: the run context is ctx bounded by nr.timeout;
//     timedOut reports that the watchdog (not the caller) expired it;
//   - panic isolation: a panic inside protocol/engine code is recovered
//     into an *errPanic and the session is discarded, never repooled;
//   - pooling: on clean completion the session goes back for reuse.
//
// The returned Result's Metrics map is freshly allocated per run
// (analysis.Set.Finish), so it stays valid after the session is repooled.
func (s *Server) executeRun(ctx context.Context, nr *runSpec, obs engine.RoundObserver) (res engine.Result, g graphInfo, timedOut bool, err error) {
	ps, err := s.pool.get(nr)
	if err != nil {
		return engine.Result{}, graphInfo{}, false, err
	}
	g = graphInfo{name: ps.g.Name(), n: ps.g.N(), m: ps.g.M()}
	runCtx, cancel := context.WithTimeout(ctx, nr.timeout)
	defer cancel()

	panicked := true // until proven otherwise: a non-local exit repools nothing
	defer func() {
		if panicked {
			if r := recover(); r != nil {
				stack := debug.Stack()
				s.cfg.Logger.Error("service: recovered run panic", "panic", r, "stack", string(stack))
				s.metrics.panics.Inc()
				err = &errPanic{val: r, stack: stack}
				return
			}
			// A non-panic early exit (shouldn't happen) still drops ps.
			return
		}
		ps.relay.target = nil
		s.pool.put(nr, ps)
	}()

	ps.relay.target = obs
	start := time.Now()
	res, err = ps.sess.RunFrom(runCtx, nr.origins)
	elapsed := time.Since(start)
	panicked = false
	ps.relay.target = nil

	// The watchdog expired, as opposed to the caller hanging up: the run
	// context is deadline-exceeded while the parent is still live.
	if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		timedOut = true
	}
	if timedOut {
		s.metrics.runTimeouts.Inc()
	}
	if err == nil {
		s.metrics.recordRun(elapsed, res.Rounds, res.TotalMessages)
		s.metrics.runPhases.With("build").Observe(res.Phases.Build.Seconds())
		s.metrics.runPhases.With("run").Observe(res.Phases.Run.Seconds())
		s.metrics.runPhases.With("analyze").Observe(res.Phases.Analyze.Seconds())
	}
	return res, g, timedOut, err
}

// graphInfo carries the built graph's identity out of executeRun (the
// *graph.Graph itself stays owned by the pooled session).
type graphInfo struct {
	name string
	n, m int
}
