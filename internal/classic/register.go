package classic

import (
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/sim"
)

// init self-registers classic flag-based flooding with the sim façade's
// protocol registry, making it selectable as -protocol classic on any
// engine.
func init() {
	sim.Register("classic", func(spec sim.Spec) (engine.Protocol, error) {
		return NewFlood(spec.Graph, spec.Origins...)
	})
}
