// Package classic implements the textbook flooding algorithm that the paper
// contrasts amnesiac flooding with: every node keeps a persistent "seen"
// flag, forwards the message to all neighbours except the ones it arrived
// from the first time it sees it, and ignores every later copy.
//
// It serves as the baseline of experiment E8: same synchronous engine, same
// graphs, so round counts, message totals, and persistent per-node memory
// are directly comparable with amnesiac flooding.
package classic

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Flood is classic flag-based flooding, instantiated for a graph and origin
// set. It implements engine.Protocol.
type Flood struct {
	g       *graph.Graph
	origins []graph.NodeID
}

var (
	_ engine.Protocol       = (*Flood)(nil)
	_ engine.DenseProtocol  = (*Flood)(nil)
	_ engine.BitsetProtocol = (*Flood)(nil)
)

// NewFlood returns classic flooding on g from the given origins. Origin
// validation matches core.NewFlood.
func NewFlood(g *graph.Graph, origins ...graph.NodeID) (*Flood, error) {
	if len(origins) == 0 {
		return nil, core.ErrNoOrigin
	}
	seen := make(map[graph.NodeID]bool, len(origins))
	uniq := make([]graph.NodeID, 0, len(origins))
	for _, o := range origins {
		if !g.HasNode(o) {
			return nil, fmt.Errorf("classic: origin %d on %s: %w", o, g, core.ErrBadOrigin)
		}
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
		}
	}
	slices.Sort(uniq)
	return &Flood{g: g, origins: uniq}, nil
}

// MustNewFlood is NewFlood that panics on error, for examples and
// experiments with inputs valid by construction.
func MustNewFlood(g *graph.Graph, origins ...graph.NodeID) *Flood {
	f, err := NewFlood(g, origins...)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements engine.Protocol.
func (f *Flood) Name() string {
	return "classic-flooding"
}

// Origins returns the sorted origin set.
func (f *Flood) Origins() []graph.NodeID {
	return append([]graph.NodeID(nil), f.origins...)
}

// Bootstrap implements engine.Protocol: origins mark themselves seen and
// send to all neighbours in round 1, exactly like amnesiac flooding's first
// round.
func (f *Flood) Bootstrap() []engine.Send {
	var sends []engine.Send
	for _, o := range f.origins {
		for _, nbr := range f.g.Neighbors(o) {
			sends = append(sends, engine.Send{From: o, To: nbr})
		}
	}
	return sends
}

// NewNode implements engine.Protocol. Unlike amnesiac flooding, the
// automaton closes over one persistent bit: whether this node has already
// seen the message. The first delivery triggers a forward to the complement
// of the senders; every later delivery is dropped. That single bit is the
// memory the paper's amnesiac variant removes.
func (f *Flood) NewNode(v graph.NodeID) engine.NodeAutomaton {
	nbrs := f.g.Neighbors(v)
	seen := false
	for _, o := range f.origins {
		if o == v {
			seen = true // origins never re-forward
		}
	}
	return func(_ int, senders []graph.NodeID) []graph.NodeID {
		if seen {
			return nil
		}
		seen = true
		out := make([]graph.NodeID, 0, len(nbrs))
		i := 0
		for _, nbr := range nbrs {
			for i < len(senders) && senders[i] < nbr {
				i++
			}
			if i < len(senders) && senders[i] == nbr {
				continue
			}
			out = append(out, nbr)
		}
		return out
	}
}

// NewRun implements engine.DenseProtocol. The run state is the per-node
// "seen" bit as one flat []bool — indexed by node, so the parallel engine's
// concurrent calls for distinct nodes touch distinct elements.
func (f *Flood) NewRun() engine.RoundAppender {
	seen := make([]bool, f.g.N())
	for _, o := range f.origins {
		seen[o] = true // origins never re-forward
	}
	return &classicRun{csr: f.g.CSR(), seen: seen}
}

// classicRun is the appender fast path of classic flooding: first delivery
// forwards to the complement of the senders, every later delivery is
// dropped.
type classicRun struct {
	csr  graph.CSR
	seen []bool
}

func (r *classicRun) AppendSends(_ int, v graph.NodeID, senders []graph.NodeID, out []engine.Send) []engine.Send {
	if r.seen[v] {
		return out
	}
	r.seen[v] = true
	return engine.AppendComplement(out, v, r.csr.Row(v), senders)
}

// BitsetRule implements engine.BitsetProtocol: classic flooding is the
// complement rule gated by the per-node seen bit — forward once, then stay
// silent — which the bitset engine executes as RuleComplementOnce with the
// origins pre-marked seen (Origins feeds that pre-marking).
func (f *Flood) BitsetRule() engine.BitsetRule {
	return engine.RuleComplementOnce
}

// PersistentBitsPerNode returns the persistent state classic flooding needs
// per node between rounds: the one "seen" flag. Amnesiac flooding needs
// zero. Used by the E8 comparison tables.
func PersistentBitsPerNode() int {
	return 1
}
