package classic_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/classic"
	"amnesiacflood/internal/core"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func runClassic(t *testing.T, g *graph.Graph, origins ...graph.NodeID) engine.Result {
	t.Helper()
	proto, err := classic.NewFlood(g, origins...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidationMatchesCore(t *testing.T) {
	g := gen.Path(3)
	if _, err := classic.NewFlood(g); !errors.Is(err, core.ErrNoOrigin) {
		t.Errorf("no origin error = %v", err)
	}
	if _, err := classic.NewFlood(g, 9); !errors.Is(err, core.ErrBadOrigin) {
		t.Errorf("bad origin error = %v", err)
	}
}

func TestClassicFloodCoversPath(t *testing.T) {
	g := gen.Path(6)
	res := runClassic(t, g, 0)
	if !res.Terminated {
		t.Fatal("classic flooding did not terminate")
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Rounds)
	}
	if res.TotalMessages != 5 {
		t.Fatalf("messages = %d, want 5 (one per edge, one direction)", res.TotalMessages)
	}
}

func TestClassicTriangleStopsFast(t *testing.T) {
	// Triangle from b: round 1 b->{a,c}; round 2 a->c and c->a, both
	// dropped (seen). Amnesiac flooding needs 3 rounds on the same graph.
	res := runClassic(t, gen.Cycle(3), 1)
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	wantRound2 := []engine.Send{{From: 0, To: 2}, {From: 2, To: 0}}
	if !reflect.DeepEqual(res.Trace[1].Sends, wantRound2) {
		t.Fatalf("round 2 = %v, want %v", res.Trace[1].Sends, wantRound2)
	}
}

func TestClassicEveryNodeForwardsAtMostOnce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		proto, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		res, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		sentInRounds := make(map[graph.NodeID]map[int]bool)
		for _, rec := range res.Trace {
			for _, s := range rec.Sends {
				if sentInRounds[s.From] == nil {
					sentInRounds[s.From] = map[int]bool{}
				}
				sentInRounds[s.From][rec.Round] = true
			}
		}
		for _, rounds := range sentInRounds {
			if len(rounds) > 1 {
				return false // forwarded in two different rounds
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicCoversEveryNodeAtBFSDistance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		proto, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		res, err := engine.Run(context.Background(), g, proto, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		dist := algo.BFS(g, src)
		firstReceive := make([]int, g.N())
		for _, rec := range res.Trace {
			for _, s := range rec.Sends {
				if firstReceive[s.To] == 0 {
					firstReceive[s.To] = rec.Round
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			if graph.NodeID(v) == src {
				continue
			}
			if firstReceive[v] != dist[v] {
				return false
			}
		}
		// Classic flooding always stops within e(src)+1 rounds.
		return res.Rounds <= algo.Eccentricity(g, src)+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicVsAmnesiacOnBipartite(t *testing.T) {
	// On bipartite graphs the two protocols send exactly the same
	// messages: with no odd cycle a node never hears the message again, so
	// the amnesia makes no difference.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.Connectify(gen.RandomBipartite(2+rng.Intn(15), 2+rng.Intn(15), 0.25, rng), rng)
		src := graph.NodeID(rng.Intn(g.N()))
		cl, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		clRes, err := engine.Run(context.Background(), g, cl, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		af, err := core.NewFlood(g, src)
		if err != nil {
			return false
		}
		afRes, err := engine.Run(context.Background(), g, af, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		return engine.EqualTraces(clRes.Trace, afRes.Trace)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicNeverSendsMoreThanAmnesiac(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		cl, err := classic.NewFlood(g, src)
		if err != nil {
			return false
		}
		clRes, err := engine.Run(context.Background(), g, cl, engine.Options{})
		if err != nil {
			return false
		}
		afRep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		return clRes.TotalMessages <= afRep.TotalMessages()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentBits(t *testing.T) {
	if classic.PersistentBitsPerNode() != 1 {
		t.Fatal("classic flooding persistent bits != 1")
	}
}

func TestMultiOriginClassic(t *testing.T) {
	g := gen.Path(7)
	res := runClassic(t, g, 0, 6)
	if !res.Terminated {
		t.Fatal("multi-origin classic flooding did not terminate")
	}
	// Waves meet in the middle: max multi-BFS distance is 3.
	if res.Rounds > 4 {
		t.Fatalf("rounds = %d, want <= 4", res.Rounds)
	}
}

func TestClassicName(t *testing.T) {
	proto, err := classic.NewFlood(gen.Path(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if proto.Name() != "classic-flooding" {
		t.Fatalf("name = %q", proto.Name())
	}
	if got := proto.Origins(); !reflect.DeepEqual(got, []graph.NodeID{0}) {
		t.Fatalf("origins = %v", got)
	}
}
