package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// This file is the Prometheus text-exposition writer (format 0.0.4): one
// HELP/TYPE header per family, one sample line per series (histograms
// expand to cumulative _bucket lines plus _sum and _count). Output order is
// deterministic — families by name, series by label values — so the format
// is golden-testable and scrape diffs are meaningful.

// WriteProm renders a snapshot in the Prometheus text format.
func WriteProm(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range snap.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, s := range f.Series {
			switch f.Kind {
			case KindHistogram:
				for _, b := range s.Buckets {
					bw.WriteString(f.Name)
					bw.WriteString("_bucket")
					writeLabels(bw, f.Labels, s.Labels, formatLE(b.LE))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(b.Count, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.Name)
				bw.WriteString("_sum")
				writeLabels(bw, f.Labels, s.Labels, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.Sum))
				bw.WriteByte('\n')
				bw.WriteString(f.Name)
				bw.WriteString("_count")
				writeLabels(bw, f.Labels, s.Labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.Count, 10))
				bw.WriteByte('\n')
			default:
				bw.WriteString(f.Name)
				writeLabels(bw, f.Labels, s.Labels, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.Value))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// WriteProm renders the registry's current state (see the Snapshot method).
func (r *Registry) WriteProm(w io.Writer) error { return WriteProm(w, r.Snapshot()) }

// writeLabels renders the {name="value",...} block, appending the
// histogram le label when non-empty. No block is written for an unlabeled
// non-histogram series.
func writeLabels(w *bufio.Writer, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatLE renders a bucket bound, spelling the last bucket +Inf.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatFloat(v)
}

// formatFloat renders a sample value in the shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp escapes a HELP line body (backslash and newline).
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// escapeLabel escapes a label value (backslash, double quote, newline).
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler returns the GET /metrics handler for the registry, answering the
// Prometheus text format with its canonical content type.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}
