package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds the fixture the exposition golden covers: family
// ordering (alphabetical), label ordering (declaration order, series sorted
// by values), value escaping (backslash, quote, newline), help escaping,
// and histogram bucket cumulativity with the +Inf terminal bucket.
func goldenRegistry() *Registry {
	r := NewRegistry()

	esc := r.CounterVec("test_escapes_total", `Escape check \ backslash.`, "value")
	esc.With("a\\b\"c\nd").Inc()

	lat := r.HistogramVec("test_latency_seconds", "Request latency.", []float64{0.25, 1, 4}, "endpoint")
	h := lat.With("run")
	for _, v := range []float64{0.25, 0.5, 2, 8} {
		h.Observe(v)
	}

	r.Gauge("test_queue_depth", "Current queue depth.").Set(7)

	req := r.CounterVec("test_requests_total", "Total requests.", "endpoint", "code")
	req.With("run", "200").Add(3)
	req.With("run", "500").Inc()
	req.With("sweep", "200").Add(2)
	return r
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden.prom")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, buf.String(), want)
	}
}

func TestHistogramCumulativityInExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The +Inf bucket must equal _count — the invariant scrapers rely on.
	if !strings.Contains(out, `test_latency_seconds_bucket{endpoint="run",le="+Inf"} 4`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_count{endpoint="run"} 4`) {
		t.Errorf("missing _count:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(goldenRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE test_requests_total counter") {
		t.Errorf("body missing TYPE line:\n%s", rec.Body.String())
	}
}
