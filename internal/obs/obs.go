// Package obs is the repository's observability kernel: a stdlib-only
// metrics registry with atomic counters, gauges, and histograms, a
// label-family model, a consistent snapshot API, and a Prometheus
// text-exposition writer (prom.go). Both daemons (cmd/afsimd, cmd/afshard)
// mount it as GET /metrics; the scenario runner records its resilience
// bookkeeping through it (scenario.Telemetry).
//
// The design contract that matters more than any feature: instrumentation
// is read-only with respect to simulation state. Metric updates are plain
// atomic adds on the observing side of existing seams (observers, result
// structs, admission paths) and never feed back into protocol, engine, or
// scheduling decisions — a metrics-on run produces byte-identical traces
// and suite rows to a metrics-off run (the differential gate in
// internal/scenario asserts it under the race detector).
//
// Update paths are lock-free (atomic.Uint64/Int64, CAS for histogram sums);
// family and series registration take a mutex but are idempotent, so hot
// paths hold pre-resolved *Counter/*Gauge/*Histogram handles and never
// touch a map. See README.md for naming conventions and how to add a
// metric.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is usable
// standalone, but registry-issued counters are what WriteProm exports.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets hold non-cumulative
// counts internally; snapshots cumulate them into Prometheus le semantics.
// Observe is lock-free: bucket and count updates are atomic adds, the
// float64 sum is maintained with a CAS loop.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// le semantics: v lands in the first bucket whose bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the unit every
// latency histogram in this repository uses.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// ExpBuckets returns n exponentially growing upper bounds: start,
// start*factor, ... — the log-scale shape latency distributions need.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds: start, start+width,
// ... — the linear shape round counts need.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// LatencyBuckets is the shared log-scale latency shape: 100µs doubling up
// to ~3.3 minutes (22 bounds), in seconds.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 22) }

// RoundBuckets is the shared linear round-count shape: 32-wide bins up to
// 1024 rounds (the interesting range of the paper's termination bounds;
// longer runs land in +Inf).
func RoundBuckets() []float64 { return LinearBuckets(32, 32, 32) }

// Kind discriminates the three metric families.
type Kind uint8

// The registry's metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE lines.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// family is one named metric with a fixed label schema; its children are
// the per-label-value series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // KindHistogram only

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (family, label values) child.
type series struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// seriesKey joins label values with a byte that cannot appear in them
// unescaped ambiguity-free (0xff is invalid UTF-8, so two value lists never
// collide).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// child returns (building on first use) the series for the label values.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// Registry holds metric families. The zero value is not usable; build one
// with NewRegistry. Registration is idempotent: re-registering a name with
// the same kind and label schema returns the existing family (so two
// subsystems sharing a registry can both declare the metrics they touch),
// while a conflicting re-registration panics — a programmer error, caught
// at wiring time, never at scrape time.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register resolves or creates a family, enforcing schema consistency.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !slicesEqual(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind or label schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: map[string]*series{},
	}
	if kind == KindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s bucket bounds must ascend", name))
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	r.families[name] = f
	return f
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or resolves) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).child(nil).counter
}

// Gauge registers (or resolves) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).child(nil).gauge
}

// Histogram registers (or resolves) a label-less histogram over the bucket
// upper bounds (ascending; an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, bounds).child(nil).hist
}

// CounterVec registers (or resolves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil)}
}

// GaugeVec registers (or resolves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil)}
}

// HistogramVec registers (or resolves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, bounds)}
}

// CounterVec is a labeled counter family; With resolves one series.
type CounterVec struct{ fam *family }

// With returns the counter for the label values (one per declared label, in
// declaration order), creating the series on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.child(values).counter }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.child(values).gauge }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With returns the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.child(values).hist }

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the bucket's inclusive upper bound (+Inf for the last).
	LE float64
	// Count is the cumulative observation count at or below LE.
	Count uint64
}

// SeriesSnapshot is one series' values at snapshot time.
type SeriesSnapshot struct {
	// Labels are the series' label values, aligned with the family Labels.
	Labels []string
	// Value holds the counter or gauge value (unused for histograms).
	Value float64
	// Count, Sum, and Buckets describe a histogram series. Count equals the
	// +Inf bucket's cumulative count (the snapshot derives it from the
	// bucket loads, so bucket/count coherence holds even under concurrent
	// updates; Sum is read separately and may trail by in-flight
	// observations).
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// FamilySnapshot is one family's state at snapshot time.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
	Series []SeriesSnapshot
}

// Snapshot is a point-in-time copy of a registry, with families sorted by
// name and series by label values — the deterministic order WriteProm
// renders.
type Snapshot struct {
	Families []FamilySnapshot
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labels}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: s.values}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = float64(s.gauge.Value())
			case KindHistogram:
				ss.Buckets = make([]Bucket, len(s.hist.buckets))
				var cum uint64
				for i := range s.hist.buckets {
					cum += s.hist.buckets[i].Load()
					le := math.Inf(1)
					if i < len(s.hist.bounds) {
						le = s.hist.bounds[i]
					}
					ss.Buckets[i] = Bucket{LE: le, Count: cum}
				}
				ss.Count = cum
				ss.Sum = math.Float64frombits(s.hist.sumBits.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Value looks one counter/gauge series up in the snapshot (histograms
// report their observation count). It returns 0, false when the family or
// series does not exist — the lookup summaries use, not the hot path.
func (s Snapshot) Value(name string, labelValues ...string) (float64, bool) {
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, ser := range f.Series {
			if slicesEqual(ser.Labels, labelValues) {
				if f.Kind == KindHistogram {
					return float64(ser.Count), true
				}
				return ser.Value, true
			}
		}
	}
	return 0, false
}

// Total sums a family's series — the cross-label rollup summary stanzas
// print (counters and gauges sum values; histograms sum observation
// counts).
func (s Snapshot) Total(name string) float64 {
	var total float64
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, ser := range f.Series {
			if f.Kind == KindHistogram {
				total += float64(ser.Count)
			} else {
				total += ser.Value
			}
		}
	}
	return total
}

// Version reports the build's main-module version from the embedded build
// info ("(devel)" for plain go build/run), for health endpoints.
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
