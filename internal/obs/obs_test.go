package obs

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("req_total", "requests", "code")
	b := r.CounterVec("req_total", "requests", "code")
	a.With("200").Inc()
	b.With("200").Inc()
	if got := a.With("200").Value(); got != 2 {
		t.Fatalf("re-registered family did not share series: got %d, want 2", got)
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, f := range map[string]func(){
		"kind mismatch":   func() { r.Gauge("m", "") },
		"label mismatch":  func() { r.CounterVec("m", "", "x") },
		"bad metric name": func() { r.Counter("1bad", "") },
		"bad label name":  func() { r.CounterVec("ok_total", "", "bad-label") },
		"arity mismatch":  func() { r.CounterVec("v_total", "", "a", "b").With("only-one") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 8} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	s := snap.Families[0].Series[0]
	// le semantics: a value equal to a bound lands in that bound's bucket.
	want := []Bucket{{1, 2}, {2, 4}, {4, 6}, {math.Inf(1), 7}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(want))
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 20 {
		t.Errorf("sum = %g, want 20", s.Sum)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExpBuckets(1, 2, 4); got[0] != 1 || got[3] != 8 {
		t.Errorf("ExpBuckets = %v", got)
	}
	if got := LinearBuckets(10, 5, 3); got[0] != 10 || got[2] != 20 {
		t.Errorf("LinearBuckets = %v", got)
	}
	lat := LatencyBuckets()
	if lat[0] != 100e-6 || len(lat) != 22 {
		t.Errorf("LatencyBuckets = %v", lat)
	}
	rb := RoundBuckets()
	if rb[0] != 32 || rb[len(rb)-1] != 1024 {
		t.Errorf("RoundBuckets = %v", rb)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "code")
	v.With("200").Add(3)
	v.With("500").Add(1)
	r.Histogram("lat", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if got, ok := snap.Value("req_total", "200"); !ok || got != 3 {
		t.Errorf("Value(req_total, 200) = %g, %v", got, ok)
	}
	if _, ok := snap.Value("req_total", "404"); ok {
		t.Error("Value found a series that was never touched")
	}
	if got := snap.Total("req_total"); got != 4 {
		t.Errorf("Total(req_total) = %g, want 4", got)
	}
	if got, ok := snap.Value("lat"); !ok || got != 1 {
		t.Errorf("Value(lat) = %g, %v (histograms report counts)", got, ok)
	}
}

// TestConcurrentUpdates hammers one labeled family (and a histogram and a
// gauge) from GOMAXPROCS goroutines — the race-enabled test the CI
// observability gate runs. Totals must be exact: atomic updates lose
// nothing.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("hammer_total", "concurrent counter", "worker", "kind")
	hist := r.Histogram("hammer_seconds", "concurrent histogram", []float64{0.25, 0.5, 0.75})
	gauge := r.Gauge("hammer_inflight", "concurrent gauge")

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10000
	kinds := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('w' + w%3)) // contend on a few series, not one per goroutine
			for i := 0; i < perWorker; i++ {
				vec.With(label, kinds[i%len(kinds)]).Inc()
				hist.Observe(float64(i%4) * 0.25)
				gauge.Inc()
				gauge.Dec()
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Total("hammer_total"), float64(workers*perWorker); got != want {
		t.Errorf("counter total = %g, want %g", got, want)
	}
	if got, want := snap.Total("hammer_seconds"), float64(workers*perWorker); got != want {
		t.Errorf("histogram count = %g, want %g", got, want)
	}
	// Sum is exact too: every observation is a multiple of 0.25, exactly
	// representable, and the CAS loop loses no update.
	var sum float64
	for _, f := range snap.Families {
		if f.Name == "hammer_seconds" {
			sum = f.Series[0].Sum
		}
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.25 + 0.5 + 0.75)
	if sum != wantSum {
		t.Errorf("histogram sum = %g, want %g", sum, wantSum)
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced inc/dec", got)
	}
}
