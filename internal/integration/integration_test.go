// Package integration_test sweeps the full invariant matrix: every claim
// the repository makes about amnesiac flooding, checked on every instance
// of the shared workload catalog. Unit tests verify the pieces; this file
// verifies the assembled system the way a release gate would.
package integration_test

import (
	"context"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/engine/chanengine"
	"amnesiacflood/internal/faults"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/spantree"
	"amnesiacflood/internal/theory"
	"amnesiacflood/internal/workload"

	// Registers the model families addressed by sim.WithModel below.
	_ "amnesiacflood/internal/async"
	_ "amnesiacflood/internal/dynamic"
)

const catalogSeed = 20190729

// sourcesFor picks a small deterministic source set: node 0, the middle,
// and the last node (fewer for symmetric instances, where all sources are
// equivalent).
func sourcesFor(inst workload.Instance, g *graph.Graph) []graph.NodeID {
	if inst.SourceSymmetric {
		return []graph.NodeID{0}
	}
	set := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, s := range []graph.NodeID{0, graph.NodeID(g.N() / 2), graph.NodeID(g.N() - 1)} {
		if !set[s] {
			set[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestInvariantMatrix(t *testing.T) {
	for _, inst := range workload.Catalog() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			t.Parallel()
			g := inst.Build(catalogSeed)
			for _, src := range sourcesFor(inst, g) {
				rep, err := core.Run(g, src)
				if err != nil {
					t.Fatalf("source %d: %v", src, err)
				}

				// Theorem 3.1 + 3.3 bounds, coverage, receipt caps.
				if err := theory.CheckGeneralBounds(g, rep); err != nil {
					t.Errorf("general bounds: %v", err)
				}
				// Lemma 2.1 exactness on bipartite instances.
				if inst.Bipartite {
					if err := theory.CheckBipartiteExact(g, rep); err != nil {
						t.Errorf("bipartite exactness: %v", err)
					}
				}
				// The Figure 4 / Lemma 3.2 machinery.
				if err := theory.CheckSequenceMachinery(rep); err != nil {
					t.Errorf("sequence machinery: %v", err)
				}
				// The double-cover law: exact prediction.
				if err := theory.CheckDoubleCoverExact(g, rep); err != nil {
					t.Errorf("double cover: %v", err)
				}
				// Paper's predicted termination window.
				if !theory.PredictTermination(g, src).Holds(rep.Rounds()) {
					t.Errorf("termination window violated: %d rounds", rep.Rounds())
				}

				// Engine equivalence on the same protocol instance.
				flood, err := core.NewFlood(g, src)
				if err != nil {
					t.Fatal(err)
				}
				chn, err := chanengine.Run(context.Background(), g, flood, engine.Options{Trace: true})
				if err != nil {
					t.Fatalf("channel engine: %v", err)
				}
				if !engine.EqualTraces(rep.Result.Trace, chn.Trace) {
					t.Error("channel engine trace differs from sequential")
				}

				// Bipartiteness detection agrees with ground truth.
				verdict, err := detect.FromReport(g, rep)
				if err != nil {
					t.Fatalf("detect: %v", err)
				}
				if verdict.Bipartite != algo.IsBipartite(g) {
					t.Errorf("detection verdict %t disagrees with ground truth", verdict.Bipartite)
				}

				// Spanning-tree extraction yields a valid BFS tree.
				tree, err := spantree.FromReport(g, rep)
				if err != nil {
					t.Fatalf("spantree: %v", err)
				}
				if err := tree.Validate(g); err != nil {
					t.Errorf("spanning tree: %v", err)
				}

				// The zero-delay adversary, the static schedule, and the
				// zero-fault injector all reproduce the synchronous run.
				for _, mdl := range []string{"adversary:sync", "schedule:static"} {
					sess, err := sim.New(g, sim.WithModel(mdl), sim.WithOrigins(src))
					if err != nil {
						t.Fatalf("model control %s: %v", mdl, err)
					}
					mres, err := sess.Run(context.Background())
					if err != nil {
						t.Fatalf("model control %s: %v", mdl, err)
					}
					if mres.Outcome != engine.OutcomeTerminated || mres.Rounds != rep.Rounds() {
						t.Errorf("%s control diverged: %v after %d rounds", mdl, mres.Outcome, mres.Rounds)
					}
				}
				fres, err := faults.Run(g, faults.NoFaults{}, faults.Options{}, src)
				if err != nil {
					t.Fatalf("faults control: %v", err)
				}
				if fres.Outcome != faults.Terminated || fres.Rounds != rep.Rounds() {
					t.Errorf("faults control diverged: %v after %d rounds", fres.Outcome, fres.Rounds)
				}
			}
		})
	}
}

// TestFigureInstancesExactRounds pins the three paper figures to their
// exact round counts through the catalog path as well.
func TestFigureInstancesExactRounds(t *testing.T) {
	want := map[string]struct {
		source graph.NodeID
		rounds int
	}{
		"fig1-line":      {1, 2},
		"fig2-triangle":  {1, 3},
		"fig3-evenCycle": {0, 3},
	}
	for _, inst := range workload.Figures() {
		expect, ok := want[inst.Name]
		if !ok {
			t.Fatalf("unexpected figure instance %q", inst.Name)
		}
		rep, err := core.Run(inst.Build(catalogSeed), expect.source)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rounds() != expect.rounds {
			t.Errorf("%s: %d rounds, want %d", inst.Name, rep.Rounds(), expect.rounds)
		}
	}
}
