// Package doublecover implements the analytical machinery behind the
// paper's general termination bound: amnesiac flooding on a graph G behaves
// exactly like classic (flag-based) flooding on the bipartite double cover
// of G.
//
// The bipartite double cover of G(V, E) has vertex set V x {0, 1} and edges
// {(u, p), (v, 1-p)} for every {u, v} in E. A walk of length L from the
// source s to v in G corresponds to a path from (s, 0) to (v, L mod 2) in
// the cover, so the shortest even- and odd-length walks from s to v are
// plain BFS distances in the cover. Writing D[v][p] for those distances,
// the exact laws are:
//
//   - node v receives M precisely in the rounds
//     { D[v][0], D[v][1] } minus {0} and unreachable entries;
//   - the directed edge u -> v carries M at round D[u][p]+1 for each
//     reachable parity p of u, except when D[v][1-p] == D[u][p]-1 (then v
//     itself delivered M to u in round D[u][p], and the complement rule
//     suppresses the reply);
//   - the flood terminates in round max over all finite D[v][p].
//
// Package theory re-exports these as run checks, and experiment E11
// verifies the predicted traces are byte-identical to simulated ones on
// every family in the suite.
//
// Consequences visible in the paper: on a connected bipartite G only one
// parity class of the cover is reachable per node, every node receives once
// at d(s, v), and the flood stops at e(source) (Lemma 2.1). On a connected
// non-bipartite G both parities are reachable for every node, so every node
// receives exactly twice (the source: once), and the maximum cover distance
// is at most 2D+1 (Theorem 3.3).
package doublecover

import (
	"fmt"
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Infinite marks an unreachable parity (for example the odd parity of any
// node in a bipartite graph).
const Infinite = -1

// Parity indexes the two sheets of the cover: even walks (0) and odd
// walks (1).
type Parity int

// Sheet indices.
const (
	Even Parity = 0
	Odd  Parity = 1
)

// Distances holds, for one source s, the shortest walk lengths of each
// parity to every node: D[v][Even] and D[v][Odd]. D[s][Even] is 0.
type Distances struct {
	Source graph.NodeID
	D      [][2]int
}

// BFS computes the parity-BFS distances from source over g, i.e. plain BFS
// on the bipartite double cover without materialising it.
func BFS(g *graph.Graph, source graph.NodeID) Distances {
	n := g.N()
	dist := Distances{Source: source, D: make([][2]int, n)}
	for i := range dist.D {
		dist.D[i] = [2]int{Infinite, Infinite}
	}
	if !g.HasNode(source) {
		return dist
	}
	type state struct {
		v graph.NodeID
		p Parity
	}
	dist.D[source][Even] = 0
	queue := make([]state, 0, 2*n)
	queue = append(queue, state{source, Even})
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		d := dist.D[cur.v][cur.p]
		next := 1 - cur.p
		for _, nbr := range g.Neighbors(cur.v) {
			if dist.D[nbr][next] == Infinite {
				dist.D[nbr][next] = d + 1
				queue = append(queue, state{nbr, next})
			}
		}
	}
	return dist
}

// Reached reports whether node v is reachable with parity p.
func (d Distances) Reached(v graph.NodeID, p Parity) bool {
	return d.D[v][p] != Infinite
}

// ReceiptRounds returns the rounds in which node v receives M, in
// increasing order: the finite, non-zero cover distances. The source's
// round-0 "possession" is excluded (it is the paper's R_0, not a receipt).
func (d Distances) ReceiptRounds(v graph.NodeID) []int {
	var out []int
	for _, p := range []Parity{Even, Odd} {
		if dv := d.D[v][p]; dv > 0 {
			out = append(out, dv)
		}
	}
	if len(out) == 2 && out[0] > out[1] {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

// TerminationRound returns the exact round in which the flood from the
// source terminates: the maximum finite cover distance, or 0 when nothing
// is reachable (isolated source).
func (d Distances) TerminationRound() int {
	max := 0
	for _, dv := range d.D {
		for _, p := range []Parity{Even, Odd} {
			if dv[p] > max {
				max = dv[p]
			}
		}
	}
	return max
}

// Cover materialises the bipartite double cover as a concrete graph:
// vertex (v, p) becomes node v + p*n. It is always bipartite; it is
// connected iff g is connected and non-bipartite (for bipartite g it splits
// into two copies of g).
func Cover(g *graph.Graph) *graph.Graph {
	n := g.N()
	b := graph.NewBuilder(2 * n).Name(fmt.Sprintf("doubleCover(%s)", g.Name()))
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V+graph.NodeID(n))
		b.AddEdge(e.V, e.U+graph.NodeID(n))
	}
	return b.MustBuild()
}

// CoverNode maps a (node, parity) pair of g to its node ID in Cover(g).
func CoverNode(g *graph.Graph, v graph.NodeID, p Parity) graph.NodeID {
	return v + graph.NodeID(int(p)*g.N())
}

// Prediction is the complete forecast of a single-source amnesiac flood,
// derived from two BFS passes and no simulation.
type Prediction struct {
	Source graph.NodeID
	// Rounds is the exact termination round.
	Rounds int
	// Receipts[v] lists the exact rounds node v receives M, ascending.
	Receipts [][]int
	// TotalMessages is the exact number of point-to-point deliveries.
	TotalMessages int
	// Trace is the exact per-round send schedule, identical to the trace
	// the synchronous engines produce.
	Trace []engine.RoundRecord
}

// Predict forecasts the flood from source on g by applying the cover laws.
func Predict(g *graph.Graph, source graph.NodeID) Prediction {
	dist := BFS(g, source)
	pred := Prediction{
		Source:   source,
		Rounds:   dist.TerminationRound(),
		Receipts: make([][]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		pred.Receipts[v] = dist.ReceiptRounds(graph.NodeID(v))
	}

	// Reconstruct the send schedule: u -> v at round D[u][p]+1 for each
	// reachable parity p, unless v delivered M to u in round D[u][p]
	// (i.e. D[v][1-p] == D[u][p]-1 >= 0).
	byRound := map[int][]engine.Send{}
	for u := 0; u < g.N(); u++ {
		uid := graph.NodeID(u)
		for _, p := range []Parity{Even, Odd} {
			du := dist.D[uid][p]
			if du == Infinite {
				continue
			}
			for _, v := range g.Neighbors(uid) {
				dv := dist.D[v][1-p]
				if dv != Infinite && dv == du-1 {
					continue // v was a deliverer of u's parity-p receipt
				}
				byRound[du+1] = append(byRound[du+1], engine.Send{From: uid, To: v})
			}
		}
	}
	rounds := make([]int, 0, len(byRound))
	for r := range byRound {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	for _, r := range rounds {
		sends := byRound[r]
		slices.SortFunc(sends, func(a, b engine.Send) int {
			if a.From != b.From {
				return int(a.From) - int(b.From)
			}
			return int(a.To) - int(b.To)
		})
		pred.Trace = append(pred.Trace, engine.RoundRecord{Round: r, Sends: sends})
		pred.TotalMessages += len(sends)
	}
	return pred
}

// SecondReceivers returns the nodes predicted to receive M twice — exactly
// the nodes with both parities reachable at positive distance. For a
// connected bipartite graph this is empty; for a connected non-bipartite
// graph it is every node except possibly the source.
func (d Distances) SecondReceivers() []graph.NodeID {
	var out []graph.NodeID
	for v := range d.D {
		if len(d.ReceiptRounds(graph.NodeID(v))) == 2 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
