package doublecover_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

func TestBFSTriangle(t *testing.T) {
	g := gen.Cycle(3)
	d := doublecover.BFS(g, 1) // source b
	want := [][2]int{
		{2, 1}, // a: even walk b-a-... length 2 (b->c->a? no: b-a-b? even walk b->a->b->a length... shortest even walk to a is 2 via b->c->a), odd walk length 1
		{0, 3}, // b
		{2, 1}, // c
	}
	if !reflect.DeepEqual(d.D, want) {
		t.Fatalf("D = %v, want %v", d.D, want)
	}
	if d.TerminationRound() != 3 {
		t.Fatalf("termination = %d, want 3 (Figure 2)", d.TerminationRound())
	}
	if got := d.ReceiptRounds(1); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("source receipts = %v, want [3]", got)
	}
	if got := d.ReceiptRounds(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("a receipts = %v, want [1 2]", got)
	}
}

func TestBFSBipartiteSingleParity(t *testing.T) {
	g := gen.Cycle(6)
	d := doublecover.BFS(g, 0)
	for v := 0; v < 6; v++ {
		rounds := d.ReceiptRounds(graph.NodeID(v))
		if v == 0 {
			if len(rounds) != 0 {
				t.Fatalf("source receipts = %v", rounds)
			}
			continue
		}
		if len(rounds) != 1 {
			t.Fatalf("node %d receipts = %v, want single receipt", v, rounds)
		}
		if dist := algo.BFS(g, 0); rounds[0] != dist[v] {
			t.Fatalf("node %d receipt %d != BFS distance %d", v, rounds[0], dist[v])
		}
	}
	if d.TerminationRound() != 3 {
		t.Fatalf("termination = %d, want e(source) = 3", d.TerminationRound())
	}
}

func TestBFSInvalidSource(t *testing.T) {
	d := doublecover.BFS(gen.Path(3), 99)
	if d.TerminationRound() != 0 {
		t.Fatal("invalid source produced reachable nodes")
	}
}

func TestReachedAndSecondReceivers(t *testing.T) {
	g := gen.Cycle(5)
	d := doublecover.BFS(g, 0)
	if !d.Reached(2, doublecover.Even) || !d.Reached(2, doublecover.Odd) {
		t.Fatal("odd cycle must reach both parities everywhere")
	}
	second := d.SecondReceivers()
	// On C5 every node including the source? Source receipts: D[0][1] =
	// shortest odd closed walk = 5, D[0][0] = 0 (excluded) -> one receipt.
	if len(second) != 4 {
		t.Fatalf("second receivers = %v, want the 4 non-source nodes", second)
	}
	bip := doublecover.BFS(gen.Grid(3, 4), 0)
	if len(bip.SecondReceivers()) != 0 {
		t.Fatal("bipartite graph predicted double receipts")
	}
}

func TestCoverShape(t *testing.T) {
	g := gen.Cycle(3)
	cover := doublecover.Cover(g)
	if cover.N() != 6 || cover.M() != 6 {
		t.Fatalf("cover of C3 = %s, want 6 nodes 6 edges", cover)
	}
	if !algo.IsBipartite(cover) {
		t.Fatal("double cover is not bipartite")
	}
	// The double cover of C3 is C6: connected, 2-regular.
	if !algo.Connected(cover) {
		t.Fatal("cover of non-bipartite connected graph must be connected")
	}
	for v := 0; v < cover.N(); v++ {
		if cover.Degree(graph.NodeID(v)) != 2 {
			t.Fatalf("cover degree(%d) = %d, want 2", v, cover.Degree(graph.NodeID(v)))
		}
	}
}

func TestCoverOfBipartiteSplits(t *testing.T) {
	g := gen.Path(4)
	cover := doublecover.Cover(g)
	if algo.Connected(cover) {
		t.Fatal("cover of a bipartite graph must be disconnected (two copies)")
	}
	comps := algo.Components(cover)
	if len(comps) != 2 || len(comps[0]) != 4 || len(comps[1]) != 4 {
		t.Fatalf("cover components = %v, want two copies of P4", comps)
	}
}

func TestCoverNodeMapping(t *testing.T) {
	g := gen.Path(5)
	if doublecover.CoverNode(g, 3, doublecover.Even) != 3 {
		t.Fatal("even sheet mapping wrong")
	}
	if doublecover.CoverNode(g, 3, doublecover.Odd) != 8 {
		t.Fatal("odd sheet mapping wrong")
	}
}

func TestCoverDistancesMatchInlineBFS(t *testing.T) {
	// Property: BFS on the materialised cover equals the inline parity
	// BFS.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(30), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		inline := doublecover.BFS(g, src)
		cover := doublecover.Cover(g)
		coverDist := algo.BFS(cover, doublecover.CoverNode(g, src, doublecover.Even))
		for v := 0; v < g.N(); v++ {
			for _, p := range []doublecover.Parity{doublecover.Even, doublecover.Odd} {
				want := coverDist[doublecover.CoverNode(g, graph.NodeID(v), p)]
				if inline.D[v][p] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictFigure2Exactly(t *testing.T) {
	g := gen.Cycle(3)
	pred := doublecover.Predict(g, 1)
	if pred.Rounds != 3 || pred.TotalMessages != 6 {
		t.Fatalf("prediction = %d rounds %d messages, want 3/6", pred.Rounds, pred.TotalMessages)
	}
	rep, err := core.Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualTraces(pred.Trace, rep.Result.Trace) {
		t.Fatalf("predicted trace %v != simulated %v", pred.Trace, rep.Result.Trace)
	}
}

func TestPredictMatchesSimulationEverywhere(t *testing.T) {
	// The package's headline law: predicted traces are byte-identical to
	// simulated ones, on bipartite and non-bipartite random graphs alike.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			g = gen.RandomConnected(2+rng.Intn(40), 0.08, rng)
		case 1:
			g = gen.RandomNonBipartite(3+rng.Intn(40), 0.08, rng)
		default:
			g = gen.Connectify(gen.RandomBipartite(2+rng.Intn(15), 2+rng.Intn(15), 0.2, rng), rng)
		}
		src := graph.NodeID(rng.Intn(g.N()))
		pred := doublecover.Predict(g, src)
		rep, err := core.Run(g, src)
		if err != nil {
			return false
		}
		if pred.Rounds != rep.Rounds() || pred.TotalMessages != rep.TotalMessages() {
			return false
		}
		if !engine.EqualTraces(pred.Trace, rep.Result.Trace) {
			return false
		}
		for v := 0; v < g.N(); v++ {
			var got []int
			for i, set := range rep.RoundSets {
				for _, x := range set {
					if x == graph.NodeID(v) {
						got = append(got, i+1)
					}
				}
			}
			if !reflect.DeepEqual(pred.Receipts[v], got) &&
				!(len(pred.Receipts[v]) == 0 && len(got) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictDisconnected(t *testing.T) {
	g, err := graph.FromEdges("", 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	pred := doublecover.Predict(g, 0)
	if pred.Rounds != 1 || pred.TotalMessages != 1 {
		t.Fatalf("disconnected prediction = %+v", pred)
	}
	if len(pred.Receipts[2]) != 0 || len(pred.Receipts[3]) != 0 {
		t.Fatal("unreachable nodes predicted to receive")
	}
}

func TestPredictIsolatedSource(t *testing.T) {
	g, err := graph.FromEdges("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred := doublecover.Predict(g, 0)
	if pred.Rounds != 0 || pred.TotalMessages != 0 || len(pred.Trace) != 0 {
		t.Fatalf("isolated source prediction = %+v", pred)
	}
}
