package doublecover_test

import (
	"fmt"

	"amnesiacflood/internal/doublecover"
	"amnesiacflood/internal/graph/gen"
)

// ExamplePredict forecasts the Figure 2 triangle run without simulating:
// termination round, message count, and the receipt schedule all come from
// two BFS passes over the bipartite double cover.
func ExamplePredict() {
	g := gen.Cycle(3)
	pred := doublecover.Predict(g, 1) // flood from b
	fmt.Printf("rounds=%d messages=%d\n", pred.Rounds, pred.TotalMessages)
	fmt.Printf("receipts of a: %v\n", pred.Receipts[0])
	fmt.Printf("receipts of b: %v\n", pred.Receipts[1])
	// Output:
	// rounds=3 messages=6
	// receipts of a: [1 2]
	// receipts of b: [3]
}

// ExampleBFS shows the parity distances behind the prediction: on an odd
// cycle both parities are reachable everywhere, which is why every node
// hears the message twice.
func ExampleBFS() {
	g := gen.Cycle(5)
	dist := doublecover.BFS(g, 0)
	fmt.Printf("node 2: even-walk %d, odd-walk %d\n",
		dist.D[2][doublecover.Even], dist.D[2][doublecover.Odd])
	fmt.Printf("termination round: %d\n", dist.TerminationRound())
	// Output:
	// node 2: even-walk 2, odd-walk 3
	// termination round: 5
}
