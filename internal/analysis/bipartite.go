package analysis

import (
	"fmt"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Bipartite is the streaming odd-cycle detector, the analysis form of
// detect.Monitor + detect.FromReport: watching a single-source flood round
// by round, a node hearing M in two distinct rounds — or the source hearing
// M at all — witnesses an odd cycle (on a bipartite graph neither can
// happen, Lemma 2.1). The analyzer signals readiness at the first witness,
// so a run carrying only this analysis stops early exactly like
// detect.Probe; left to run out, it collects every witness and cross-checks
// the receipt signal against the late-termination signal the way
// detect.Bipartiteness does.
type Bipartite struct {
	g      *graph.Graph
	source graph.NodeID
	// firstHeard[v] is the first round v received M, 0 if not yet.
	firstHeard []int
	isWitness  []bool
	witnesses  []graph.NodeID
	found      bool
	ecc        eccCache
}

var _ Analyzer = (*Bipartite)(nil)

func init() {
	Register("bipartite", Family{
		Doc:     "streaming odd-cycle detection on a single-source flood (early-stops at the first witness)",
		Metrics: []string{"bipartite", "witnesses", "eccentricity", "lateRounds"},
		New: func(ctx Context, v Values) (Analyzer, error) {
			n := ctx.Graph.N()
			return &Bipartite{
				g:          ctx.Graph,
				firstHeard: make([]int, n),
				isWitness:  make([]bool, n),
			}, nil
		},
	})
}

// Family implements Analyzer.
func (b *Bipartite) Family() string { return "bipartite" }

// Start implements Analyzer.
func (b *Bipartite) Start(origins []graph.NodeID) error {
	src, err := singleOrigin("bipartite", origins)
	if err != nil {
		return err
	}
	b.source = src
	clear(b.firstHeard)
	clear(b.isWitness)
	b.witnesses = b.witnesses[:0]
	b.found = false
	return nil
}

// ObserveRound implements engine.RoundObserver, signalling readiness from
// the first odd-cycle witness on.
func (b *Bipartite) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		if v == b.source || (b.firstHeard[v] != 0 && b.firstHeard[v] != rec.Round) {
			// The source hearing M back, or any node hearing it in a second
			// distinct round, certifies an odd cycle.
			if !b.isWitness[v] {
				b.isWitness[v] = true
				b.witnesses = append(b.witnesses, v)
			}
			b.found = true
			continue
		}
		if b.firstHeard[v] == 0 {
			b.firstHeard[v] = rec.Round
		}
	}
	return b.found, nil
}

// Finish implements Analyzer. On runs that flooded to completion the two
// witness signals (double receipts, termination after e(source)) are
// cross-checked exactly like detect.Bipartiteness — a disagreement means a
// simulator bug and is returned as an error. Both signals presuppose the
// synchronous model (a delay adversary manufactures double receipts on
// bipartite graphs and stretches rounds past e(source)), so like the
// termination analysis, the verdict metrics are emitted only for sync
// runs; non-sync runs report the raw witness count alone.
func (b *Bipartite) Finish(res engine.Result) (Metrics, error) {
	ecc := b.ecc.of(b.g, b.source)
	m := Metrics{
		"witnesses":    float64(len(b.witnesses)),
		"eccentricity": float64(ecc),
	}
	if res.Model != "" && res.Model != "sync" {
		return m, nil
	}
	if res.Terminated {
		byRounds := res.Rounds > ecc
		if b.found != byRounds {
			return nil, fmt.Errorf(
				"witness signals disagree on %s from %d: doubleReceipts=%t lateRounds=%t (rounds=%d, e=%d)",
				b.g, b.source, b.found, byRounds, res.Rounds, ecc)
		}
		m["lateRounds"] = boolMetric(byRounds)
	}
	if res.Terminated || b.found {
		// A verdict needs either a completed flood (no witness can be
		// missing) or a found witness (sound regardless of truncation).
		m["bipartite"] = boolMetric(!b.found)
	}
	return m, nil
}

// Witnesses returns the odd-cycle witness nodes in discovery order. The
// slice is the analyzer's reusable buffer: valid until the next Start.
func (b *Bipartite) Witnesses() []graph.NodeID { return b.witnesses }

// Found reports whether any odd-cycle witness was observed.
func (b *Bipartite) Found() bool { return b.found }
