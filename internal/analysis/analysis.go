// Package analysis makes run measurement a registry-driven axis of the sim
// façade, exactly like protocols, engines, graphs, and execution models:
// every metric the paper reasons about — termination round vs. the
// e(v)/2e(v)+1 closed forms, coverage and receive counts, bipartiteness
// witnesses, BFS spanning trees, the Dijkstra–Scholten detection baseline —
// is a self-registered *streaming* analysis selected by a one-line spec
// string ("coverage", "termination", "quantiles:metric=messages").
//
// An Analyzer is a stop-capable engine.RoundObserver with a run lifecycle:
// Start resets its reusable buffers for one run, ObserveRound folds each
// round's sends into the metrics incrementally (no post-hoc trace re-walk,
// no retained trace), and Finish turns the accumulated state plus the
// engine result into a flat Metrics map. One analyzer instance serves every
// run of a reused sim.Session or sim.RunBatch, so sweep-style workloads pay
// no per-run analysis allocation — the same amortisation contract the fast
// engines keep for their arenas.
//
// The package deliberately depends only on the engine/graph layers (plus
// gen for spec recognition, algo for ground truth, stats for summaries, and
// termdetect for the echo baseline), so the sim façade can own it the way
// it owns internal/model. The legacy post-hoc entry points (core.Analyze,
// detect.FromReport, spantree.FromReport, termdetect.Run) remain as
// compatibility adapters and differential-test oracles.
package analysis

import (
	"fmt"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
)

// Context is everything an analysis factory may need to size its buffers
// and recognise the instance it will measure.
type Context struct {
	// Graph is the topology the analysed runs execute on. Never nil.
	Graph *graph.Graph
	// GraphSpec is the canonical graph spec (internal/graph/gen grammar)
	// when the graph came from the registry — graphs built by gen are
	// named with their fully explicit spec, so the sim façade passes
	// Graph.Name(). Empty or unparseable specs simply disable
	// spec-recognising metrics (the termination closed forms).
	GraphSpec string
}

// Metrics is a flat named-metric map — the merged, sink-friendly shape
// every analysis reduces to. Keys are "<family>.<metric>" once merged by a
// Set; individual analyzers return unprefixed names.
type Metrics map[string]float64

// Analyzer is one streaming analysis bound to a graph. The lifecycle per
// run is Start → ObserveRound* → Finish; Start must fully reset any state
// so one analyzer serves every run of a reused Session.
//
// ObserveRound's stop return is a *readiness* signal: true means the
// analyzer has everything it needs and the run may end early for all it
// cares (the bipartite monitor after its first witness, the spanning tree
// once every node is adopted). Whether the run actually stops is the
// composing Set's decision — an analyzer must stay correct when rounds keep
// arriving after it signalled readiness, and must keep signalling readiness
// on those rounds.
type Analyzer interface {
	// Family returns the registered family name, the prefix of the
	// analyzer's merged metric keys.
	Family() string
	// Start begins one run from the given origin set, resetting all
	// per-run state. Analyses with origin-arity requirements (bipartite,
	// spantree, echo need exactly one) reject bad sets here.
	Start(origins []graph.NodeID) error
	engine.RoundObserver
	// Finish derives the run's metrics from the streamed state and the
	// engine result (which carries rounds, totals, outcome, and model).
	// The result's Trace is not consulted — analyses stream.
	Finish(res engine.Result) (Metrics, error)
}

// Set composes several analyzers behind one engine.RoundObserver, with the
// stop policy the façade needs: the observed run is allowed to end early
// only when every member has signalled readiness (and AllowStop is set —
// the façade clears it when a full trace was requested, since an early
// stop would truncate it).
type Set struct {
	analyzers []Analyzer
	// AllowStop gates analysis-driven early stopping of the observed run.
	AllowStop bool
	done      []bool
}

var _ engine.RoundObserver = (*Set)(nil)

// NewSet parses and builds one analyzer per spec. Duplicate families are
// rejected: their metrics would collide in the merged map.
func NewSet(specs []string, ctx Context) (*Set, error) {
	s := &Set{AllowStop: true}
	seen := map[string]bool{}
	for _, spec := range specs {
		a, err := Build(spec, ctx)
		if err != nil {
			return nil, err
		}
		if seen[a.Family()] {
			return nil, fmt.Errorf("analysis: duplicate family %q in analysis set (metrics would collide)", a.Family())
		}
		seen[a.Family()] = true
		s.analyzers = append(s.analyzers, a)
	}
	s.done = make([]bool, len(s.analyzers))
	return s, nil
}

// Analyzers returns the set's members in spec order.
func (s *Set) Analyzers() []Analyzer { return s.analyzers }

// Analyzer returns the member of the named family, if present.
func (s *Set) Analyzer(family string) (Analyzer, bool) {
	for _, a := range s.analyzers {
		if a.Family() == family {
			return a, true
		}
	}
	return nil, false
}

// Start begins one run on every member.
func (s *Set) Start(origins []graph.NodeID) error {
	for _, a := range s.analyzers {
		if err := a.Start(origins); err != nil {
			return fmt.Errorf("analysis: %s: %w", a.Family(), err)
		}
	}
	for i := range s.done {
		s.done[i] = false
	}
	return nil
}

// ObserveRound implements engine.RoundObserver: every member sees every
// round (readiness is sticky, so already-ready members are still invoked —
// their later-round observations may refine artifacts), and the set
// requests a stop only when all members are ready.
func (s *Set) ObserveRound(rec engine.RoundRecord) (bool, error) {
	allDone := len(s.analyzers) > 0
	for i, a := range s.analyzers {
		stop, err := a.ObserveRound(rec)
		if err != nil {
			return false, fmt.Errorf("analysis: %s: %w", a.Family(), err)
		}
		s.done[i] = s.done[i] || stop
		allDone = allDone && s.done[i]
	}
	return s.AllowStop && allDone, nil
}

// Finish merges every member's metrics under "<family>.<metric>" keys.
func (s *Set) Finish(res engine.Result) (Metrics, error) {
	if len(s.analyzers) == 0 {
		return nil, nil
	}
	out := Metrics{}
	for _, a := range s.analyzers {
		m, err := a.Finish(res)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Family(), err)
		}
		for k, v := range m {
			out[a.Family()+"."+k] = v
		}
	}
	return out, nil
}

// singleOrigin is the shared origin-arity check of the single-source
// analyses.
func singleOrigin(family string, origins []graph.NodeID) (graph.NodeID, error) {
	if len(origins) != 1 {
		return 0, fmt.Errorf("the %s analysis needs exactly one origin, got %d", family, len(origins))
	}
	return origins[0], nil
}

// boolMetric renders a verdict as 0/1.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// eccCache memoises the last source's eccentricity, so reused sessions
// (repeated runs from one origin, as in benchmarks and serving loops) pay
// the O(n+m) BFS once instead of per run. Sweeps over distinct origins
// still recompute — the cache is one entry deep by design.
type eccCache struct {
	src   graph.NodeID
	ecc   int
	valid bool
}

// of returns e(src) on g, memoised for consecutive same-source calls.
func (c *eccCache) of(g *graph.Graph, src graph.NodeID) int {
	if !c.valid || c.src != src {
		c.src, c.ecc, c.valid = src, algo.Eccentricity(g, src), true
	}
	return c.ecc
}
