package analysis

import (
	"fmt"

	"amnesiacflood/internal/graph"
)

// Tree is a rooted spanning tree (or forest restricted to the root's
// component) extracted from a flood. It is the artifact of the spantree
// analysis; internal/spantree aliases it, so the historical
// spantree.Tree API is this type.
type Tree struct {
	Root graph.NodeID
	// Parent[v] is v's tree parent; the root and unreached nodes are
	// their own parent.
	Parent []graph.NodeID
	// Depth[v] is the tree depth (root = 0); unreached nodes have -1.
	Depth []int
}

// Edges returns the tree edges (parent, child), sorted by child.
func (t *Tree) Edges() []graph.Edge {
	var edges []graph.Edge
	for v, p := range t.Parent {
		if graph.NodeID(v) != p {
			edges = append(edges, graph.Edge{U: p, V: graph.NodeID(v)})
		}
	}
	return edges
}

// Reached reports whether v is in the root's component.
func (t *Tree) Reached(v graph.NodeID) bool {
	return t.Depth[v] >= 0
}

// PathToRoot returns the node sequence from v up to the root, inclusive.
// It returns nil for unreached nodes.
func (t *Tree) PathToRoot(v graph.NodeID) []graph.NodeID {
	if !t.Reached(v) {
		return nil
	}
	path := []graph.NodeID{v}
	for v != t.Root {
		v = t.Parent[v]
		path = append(path, v)
	}
	return path
}

// Validate checks the structural invariants: tree edges are graph edges,
// depths decrease by exactly one toward the root, every reached non-root
// node has a reached parent, and the edge count matches the reached count.
func (t *Tree) Validate(g *graph.Graph) error {
	reached, edges := 0, 0
	for v := 0; v < g.N(); v++ {
		node := graph.NodeID(v)
		if !t.Reached(node) {
			continue
		}
		reached++
		if node == t.Root {
			if t.Depth[v] != 0 {
				return fmt.Errorf("spantree: root depth %d", t.Depth[v])
			}
			continue
		}
		edges++
		p := t.Parent[v]
		if !g.HasEdge(p, node) {
			return fmt.Errorf("spantree: tree edge (%d,%d) is not a graph edge", p, node)
		}
		if !t.Reached(p) || t.Depth[p] != t.Depth[v]-1 {
			return fmt.Errorf("spantree: node %d depth %d but parent %d depth %d",
				node, t.Depth[v], p, t.Depth[p])
		}
	}
	if edges != reached-1 {
		return fmt.Errorf("spantree: %d edges for %d reached nodes", edges, reached)
	}
	return nil
}
