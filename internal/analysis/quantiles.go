package analysis

import (
	"fmt"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Quantiles promotes one base result quantity to a named metric column, so
// the scenario layer can fold a stats.Summary (mean / stddev / quantiles)
// over it across a whole suite — the registry form of the hand-rolled
// stats.Summarize loops the experiment sweeps used to carry. The per-run
// work is trivial by design; the value of the family is the column it adds
// to every sink and the per-cell summaries scenario.Aggregate computes over
// that column.
type Quantiles struct {
	metric string
}

var _ Analyzer = (*Quantiles)(nil)

// quantileMetrics are the base quantities the family can promote. Wall time
// is deliberately excluded: metric columns must stay deterministic so
// parallel and sequential suite executions agree byte for byte.
var quantileMetrics = map[string]func(engine.Result) float64{
	"rounds":   func(r engine.Result) float64 { return float64(r.Rounds) },
	"messages": func(r engine.Result) float64 { return float64(r.TotalMessages) },
	"lost":     func(r engine.Result) float64 { return float64(r.Lost) },
}

func init() {
	Register("quantiles", Family{
		Params: []Param{
			{Name: "metric", Kind: StringParam, Default: "rounds",
				Doc: "base quantity to promote: rounds, messages, or lost"},
		},
		Doc: "promotes a base result quantity to a metric column for scenario-layer stats.Summary aggregation",
		MetricsFor: func(v Values) []string {
			return []string{v.String("metric")}
		},
		New: func(ctx Context, v Values) (Analyzer, error) {
			metric := v.String("metric")
			if _, ok := quantileMetrics[metric]; !ok {
				return nil, fmt.Errorf("quantiles: unknown metric %q (want rounds, messages, or lost)", metric)
			}
			return &Quantiles{metric: metric}, nil
		},
	})
}

// Family implements Analyzer.
func (q *Quantiles) Family() string { return "quantiles" }

// Start implements Analyzer.
func (q *Quantiles) Start(origins []graph.NodeID) error { return nil }

// ObserveRound implements engine.RoundObserver; the promoted quantity comes
// from the result, so observation is a no-op that never requests a stop.
func (q *Quantiles) ObserveRound(rec engine.RoundRecord) (bool, error) {
	return false, nil
}

// Finish implements Analyzer.
func (q *Quantiles) Finish(res engine.Result) (Metrics, error) {
	return Metrics{q.metric: quantileMetrics[q.metric](res)}, nil
}
