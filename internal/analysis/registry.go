package analysis

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// This file is the analysis registry and its spec grammar: every streaming
// analysis family self-registers under a name, and a one-line spec string
// selects a family and binds its parameters:
//
//	family[:key=value[,key=value]...]
//
// Examples: "coverage", "termination", "quantiles:metric=messages". Family
// and key names are case-insensitive; values must not contain ',' or '='.
// Omitted parameters take the family's declared defaults.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s — the same
// contract the graph (internal/graph/gen) and execution-model
// (internal/model) registries keep, making analysis the fifth spec-driven
// axis of the sim façade.

// ParamKind types a family parameter.
type ParamKind int

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam ParamKind = iota + 1
	// FloatParam values parse with strconv.ParseFloat.
	FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam
	// StringParam values are free-form except for the spec metacharacters
	// ':', ',' and '='.
	StringParam
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	case StringParam:
		return "string"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// check validates that raw parses as a value of kind k.
func (k ParamKind) check(raw string) error {
	var err error
	switch k {
	case IntParam:
		_, err = strconv.Atoi(raw)
	case FloatParam:
		_, err = strconv.ParseFloat(raw, 64)
	case BoolParam:
		_, err = strconv.ParseBool(raw)
	case StringParam:
		if strings.ContainsAny(raw, ":,=") {
			err = fmt.Errorf("string value %q contains spec metacharacters", raw)
		}
	default:
		err = fmt.Errorf("unknown parameter kind %d", int(k))
	}
	return err
}

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param struct {
	Name    string
	Kind    ParamKind
	Default string
	Doc     string
}

// Values holds the resolved, type-checked parameters handed to a family's
// constructor. Accessors are keyed by declared parameter name; asking for
// an undeclared parameter is a programmer error and panics.
type Values struct {
	ints   map[string]int
	floats map[string]float64
	bools  map[string]bool
	strs   map[string]string
}

// Int returns the named int parameter.
func (v Values) Int(name string) int {
	n, ok := v.ints[name]
	if !ok {
		panic("analysis: constructor read undeclared int parameter " + name)
	}
	return n
}

// Float returns the named float parameter.
func (v Values) Float(name string) float64 {
	f, ok := v.floats[name]
	if !ok {
		panic("analysis: constructor read undeclared float parameter " + name)
	}
	return f
}

// Bool returns the named bool parameter.
func (v Values) Bool(name string) bool {
	b, ok := v.bools[name]
	if !ok {
		panic("analysis: constructor read undeclared bool parameter " + name)
	}
	return b
}

// String returns the named string parameter.
func (v Values) String(name string) string {
	s, ok := v.strs[name]
	if !ok {
		panic("analysis: constructor read undeclared string parameter " + name)
	}
	return s
}

// Family describes one registered analysis: its parameter declarations
// (order defines the canonical spec order), the metric names it emits, and
// the constructor.
type Family struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Doc is a one-line description for listings (afsim -list).
	Doc string
	// Metrics lists the metric names the family can emit, unprefixed
	// (Finish keys them as "<family>.<name>"). Used for CSV column
	// planning and documentation; families whose metric set depends on
	// their parameters override it with MetricsFor.
	Metrics []string
	// MetricsFor, when non-nil, resolves the metric names for one
	// parameterised spec; nil means Metrics as declared.
	MetricsFor func(v Values) []string
	// New constructs the analyzer from the run context and resolved
	// values. It must validate ranges and return an error (never panic)
	// on unusable parameters.
	New func(ctx Context, v Values) (Analyzer, error)
}

// param returns the declaration of the named parameter, or nil.
func (f Family) param(name string) *Param {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

var (
	famMu    sync.RWMutex
	famReg   = map[string]Family{}
	famNames []string // sorted cache, rebuilt on Register
)

// Register adds a family under a name, normally from this package's init so
// that importing analysis is all it takes to make every family
// spec-addressable. It panics on empty or duplicate names, nil
// constructors, and malformed parameter declarations — programmer errors.
func Register(name string, fam Family) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		panic("analysis: Register with empty family name")
	}
	if strings.ContainsAny(name, ":,= \t.") {
		panic("analysis: family name " + name + " contains spec metacharacters")
	}
	if fam.New == nil {
		panic("analysis: Register " + name + " with nil New")
	}
	seen := map[string]bool{}
	for _, p := range fam.Params {
		if p.Name == "" || strings.ContainsAny(p.Name, ":,= \t") {
			panic("analysis: family " + name + " declares invalid parameter name " + strconv.Quote(p.Name))
		}
		if seen[p.Name] {
			panic("analysis: family " + name + " declares parameter " + p.Name + " twice")
		}
		seen[p.Name] = true
		if err := p.Kind.check(p.Default); err != nil {
			panic(fmt.Sprintf("analysis: family %s parameter %s has unparseable default %q: %v", name, p.Name, p.Default, err))
		}
	}
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := famReg[name]; dup {
		panic("analysis: Register called twice for family " + name)
	}
	famReg[name] = fam
	famNames = append(famNames, name)
	slices.Sort(famNames)
}

// Families enumerates the registered family names, sorted.
func Families() []string {
	famMu.RLock()
	defer famMu.RUnlock()
	return append([]string(nil), famNames...)
}

// Lookup returns the named family's declaration.
func Lookup(name string) (Family, bool) {
	famMu.RLock()
	defer famMu.RUnlock()
	fam, ok := famReg[strings.ToLower(strings.TrimSpace(name))]
	return fam, ok
}

// Spec is a parsed analysis specification: a family name plus explicit
// parameter assignments. The zero value is invalid; build Specs with Parse.
type Spec struct {
	// Family is the lower-case registered family name.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// String renders the canonical spec string: the family name, then any
// explicit parameters in the family's declared order. For specs produced by
// Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	ordered := make([]string, 0, len(s.Params))
	emitted := map[string]bool{}
	if fam, ok := Lookup(s.Family); ok {
		for _, p := range fam.Params {
			if v, set := s.Params[p.Name]; set {
				ordered = append(ordered, p.Name+"="+v)
				emitted[p.Name] = true
			}
		}
	}
	// Parameters the family does not declare (possible only on hand-built
	// specs, which Build rejects) trail in alphabetical order so String
	// stays total and deterministic.
	var extra []string
	for k, v := range s.Params {
		if !emitted[k] {
			extra = append(extra, k+"="+v)
		}
	}
	slices.Sort(extra)
	return s.Family + ":" + strings.Join(append(ordered, extra...), ",")
}

// ErrUnknownAnalysis is wrapped into errors for family names outside the
// registry, matchable with errors.Is.
var ErrUnknownAnalysis = fmt.Errorf("unknown analysis")

// Parse parses an analysis spec string (see the grammar at the top of this
// file) against the registry: the family must be registered, every key
// declared, and every value parseable as the declared kind. Parse never
// panics and never builds an analyzer — use Build for that.
func Parse(s string) (Spec, error) {
	famName, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("analysis: empty analysis spec")
	}
	fam, ok := Lookup(famName)
	if !ok {
		return Spec{}, fmt.Errorf("analysis: %w %q (registered: %s)", ErrUnknownAnalysis, famName, strings.Join(Families(), ", "))
	}
	spec := Spec{Family: famName}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Spec{}, fmt.Errorf("analysis: spec %q has an empty parameter list (drop the trailing ':')", s)
	}
	spec.Params = map[string]string{}
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return Spec{}, fmt.Errorf("analysis: spec %q: want key=value, got %q", s, kv)
		}
		decl := fam.param(key)
		if decl == nil {
			return Spec{}, fmt.Errorf("analysis: spec %q: family %s has no parameter %q (accepts %s)", s, famName, key, paramNames(fam))
		}
		if err := decl.Kind.check(value); err != nil {
			return Spec{}, fmt.Errorf("analysis: spec %q: parameter %s wants %s, got %q", s, key, decl.Kind, value)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("analysis: spec %q assigns parameter %s twice", s, key)
		}
		spec.Params[key] = value
	}
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// resolve type-checks a spec against its family and returns the resolved
// values (explicit parameters over declared defaults).
func resolve(spec Spec) (Family, Values, error) {
	fam, ok := Lookup(spec.Family)
	if !ok {
		return Family{}, Values{}, fmt.Errorf("analysis: %w %q (registered: %s)", ErrUnknownAnalysis, spec.Family, strings.Join(Families(), ", "))
	}
	for k := range spec.Params {
		if fam.param(k) == nil {
			return Family{}, Values{}, fmt.Errorf("analysis: family %s has no parameter %q (accepts %s)", spec.Family, k, paramNames(fam))
		}
	}
	values := Values{ints: map[string]int{}, floats: map[string]float64{}, bools: map[string]bool{}, strs: map[string]string{}}
	for _, p := range fam.Params {
		raw, set := spec.Params[p.Name]
		if !set {
			raw = p.Default
		}
		var err error
		switch p.Kind {
		case IntParam:
			values.ints[p.Name], err = strconv.Atoi(raw)
		case FloatParam:
			values.floats[p.Name], err = strconv.ParseFloat(raw, 64)
		case BoolParam:
			values.bools[p.Name], err = strconv.ParseBool(raw)
		case StringParam:
			err = p.Kind.check(raw)
			values.strs[p.Name] = raw
		}
		if err != nil {
			return Family{}, Values{}, fmt.Errorf("analysis: %s: parameter %s wants %s, got %q", spec.Family, p.Name, p.Kind, raw)
		}
	}
	return fam, values, nil
}

// New builds the analyzer a spec describes for one run context. Omitted
// parameters take their declared defaults.
func New(spec Spec, ctx Context) (Analyzer, error) {
	fam, values, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	a, err := fam.New(ctx, values)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", spec, err)
	}
	return a, nil
}

// Build parses and builds in one step — the convenience entry point for the
// sim façade, CLIs, and suites holding spec strings.
func Build(spec string, ctx Context) (Analyzer, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(parsed, ctx)
}

// MetricNames resolves the prefixed metric names one spec string emits
// ("<family>.<metric>"), in declared order.
func MetricNames(spec string) ([]string, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	fam, values, err := resolve(parsed)
	if err != nil {
		return nil, err
	}
	names := fam.Metrics
	if fam.MetricsFor != nil {
		names = fam.MetricsFor(values)
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = parsed.Family + "." + n
	}
	return out, nil
}

// MetricColumns resolves the union of the metric columns a list of specs
// can emit, deduplicated, in spec order — the CSV column plan for a suite
// running those analyses.
func MetricColumns(specs []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, spec := range specs {
		names, err := MetricNames(spec)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}

// paramNames renders a family's parameter declarations for error messages,
// e.g. "metric string".
func paramNames(fam Family) string {
	if len(fam.Params) == 0 {
		return "no parameters"
	}
	parts := make([]string, len(fam.Params))
	for i, p := range fam.Params {
		parts[i] = p.Name + " " + p.Kind.String()
	}
	return strings.Join(parts, ", ")
}
