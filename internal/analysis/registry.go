package analysis

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"amnesiacflood/internal/specgrammar"
)

// This file is the analysis registry and its spec grammar: every streaming
// analysis family self-registers under a name, and a one-line spec string
// selects a family and binds its parameters:
//
//	family[:key=value[,key=value]...]
//
// Examples: "coverage", "termination", "quantiles:metric=messages". Family
// and key names are case-insensitive; values must not contain ',' or '='.
// Omitted parameters take the family's declared defaults.
//
// A parsed Spec round-trips: String emits the parameters in the family's
// declared order, so Parse(spec.String()) == spec for every parseable spec,
// and Parse(s).String() == s for every canonically ordered s — the same
// contract the graph (internal/graph/gen) and execution-model
// (internal/model) registries keep, making analysis the fifth spec-driven
// axis of the sim façade. The typed-parameter machinery underneath is the
// shared kernel in internal/specgrammar, instantiated by all three.

// ParamKind types a family parameter.
type ParamKind = specgrammar.Kind

// Parameter kinds.
const (
	// IntParam values parse with strconv.Atoi.
	IntParam = specgrammar.IntParam
	// FloatParam values parse with strconv.ParseFloat.
	FloatParam = specgrammar.FloatParam
	// BoolParam values parse with strconv.ParseBool.
	BoolParam = specgrammar.BoolParam
	// StringParam values are free-form except for the spec metacharacters
	// ':', ',' and '='.
	StringParam = specgrammar.StringParam
)

// Param declares one parameter of a family: its name, type, default value
// (a canonical literal of the declared kind), and a one-line doc string for
// -list output.
type Param = specgrammar.Param

// Values holds the resolved, type-checked parameters handed to a family's
// constructor. Accessors are keyed by declared parameter name; asking for
// an undeclared parameter is a programmer error and panics.
type Values = specgrammar.Values

// Family describes one registered analysis: its parameter declarations
// (order defines the canonical spec order), the metric names it emits, and
// the constructor.
type Family struct {
	// Params declares the accepted parameters in canonical order.
	Params []Param
	// Doc is a one-line description for listings (afsim -list).
	Doc string
	// Metrics lists the metric names the family can emit, unprefixed
	// (Finish keys them as "<family>.<name>"). Used for CSV column
	// planning and documentation; families whose metric set depends on
	// their parameters override it with MetricsFor.
	Metrics []string
	// MetricsFor, when non-nil, resolves the metric names for one
	// parameterised spec; nil means Metrics as declared.
	MetricsFor func(v Values) []string
	// New constructs the analyzer from the run context and resolved
	// values. It must validate ranges and return an error (never panic)
	// on unusable parameters.
	New func(ctx Context, v Values) (Analyzer, error)
}

// params returns the family's declarations as the kernel's ordered list.
func (f Family) params() specgrammar.Params { return specgrammar.Params(f.Params) }

var (
	famMu    sync.RWMutex
	famReg   = map[string]Family{}
	famNames []string // sorted cache, rebuilt on Register
)

// Register adds a family under a name, normally from this package's init so
// that importing analysis is all it takes to make every family
// spec-addressable. It panics on empty or duplicate names, nil
// constructors, and malformed parameter declarations — programmer errors.
// Family names additionally ban '.', which separates family and metric in
// flattened "<family>.<metric>" column names.
func Register(name string, fam Family) {
	name = specgrammar.CheckName("analysis", name, ".")
	if fam.New == nil {
		panic("analysis: Register " + name + " with nil New")
	}
	fam.params().Validate("analysis", "family "+name)
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := famReg[name]; dup {
		panic("analysis: Register called twice for family " + name)
	}
	famReg[name] = fam
	famNames = append(famNames, name)
	slices.Sort(famNames)
}

// Families enumerates the registered family names, sorted.
func Families() []string {
	famMu.RLock()
	defer famMu.RUnlock()
	return append([]string(nil), famNames...)
}

// Lookup returns the named family's declaration.
func Lookup(name string) (Family, bool) {
	famMu.RLock()
	defer famMu.RUnlock()
	fam, ok := famReg[strings.ToLower(strings.TrimSpace(name))]
	return fam, ok
}

// Spec is a parsed analysis specification: a family name plus explicit
// parameter assignments. The zero value is invalid; build Specs with Parse.
type Spec struct {
	// Family is the lower-case registered family name.
	Family string
	// Params maps explicitly assigned parameter names to their raw
	// values; omitted parameters default at build time.
	Params map[string]string
}

// String renders the canonical spec string: the family name, then any
// explicit parameters in the family's declared order. For specs produced by
// Parse, Parse(spec.String()) reproduces spec exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	var decls specgrammar.Params
	if fam, ok := Lookup(s.Family); ok {
		decls = fam.params()
	}
	return s.Family + ":" + decls.Canonical(s.Params)
}

// ErrUnknownAnalysis is wrapped into errors for family names outside the
// registry, matchable with errors.Is.
var ErrUnknownAnalysis = fmt.Errorf("unknown analysis")

// Parse parses an analysis spec string (see the grammar at the top of this
// file) against the registry: the family must be registered, every key
// declared, and every value parseable as the declared kind. Parse never
// panics and never builds an analyzer — use Build for that.
func Parse(s string) (Spec, error) {
	famName, rest, hasParams := strings.Cut(strings.TrimSpace(s), ":")
	famName = strings.ToLower(strings.TrimSpace(famName))
	if famName == "" {
		return Spec{}, fmt.Errorf("analysis: empty analysis spec")
	}
	fam, ok := Lookup(famName)
	if !ok {
		return Spec{}, fmt.Errorf("analysis: %w %q (registered: %s)", ErrUnknownAnalysis, famName, strings.Join(Families(), ", "))
	}
	spec := Spec{Family: famName}
	if !hasParams {
		return spec, nil
	}
	params, err := fam.params().ParseAssignments("analysis", s, "family "+famName, rest)
	if err != nil {
		return Spec{}, err
	}
	spec.Params = params
	return spec, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// resolve type-checks a spec against its family and returns the resolved
// values (explicit parameters over declared defaults).
func resolve(spec Spec) (Family, Values, error) {
	fam, ok := Lookup(spec.Family)
	if !ok {
		return Family{}, Values{}, fmt.Errorf("analysis: %w %q (registered: %s)", ErrUnknownAnalysis, spec.Family, strings.Join(Families(), ", "))
	}
	values, err := fam.params().Resolve("analysis", "family "+spec.Family, spec.Params)
	if err != nil {
		return Family{}, Values{}, err
	}
	return fam, values, nil
}

// New builds the analyzer a spec describes for one run context. Omitted
// parameters take their declared defaults.
func New(spec Spec, ctx Context) (Analyzer, error) {
	fam, values, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	a, err := fam.New(ctx, values)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", spec, err)
	}
	return a, nil
}

// Build parses and builds in one step — the convenience entry point for the
// sim façade, CLIs, and suites holding spec strings.
func Build(spec string, ctx Context) (Analyzer, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(parsed, ctx)
}

// MetricNames resolves the prefixed metric names one spec string emits
// ("<family>.<metric>"), in declared order.
func MetricNames(spec string) ([]string, error) {
	parsed, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	fam, values, err := resolve(parsed)
	if err != nil {
		return nil, err
	}
	names := fam.Metrics
	if fam.MetricsFor != nil {
		names = fam.MetricsFor(values)
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = parsed.Family + "." + n
	}
	return out, nil
}

// MetricColumns resolves the union of the metric columns a list of specs
// can emit, deduplicated, in spec order — the CSV column plan for a suite
// running those analyses.
func MetricColumns(specs []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, spec := range specs {
		names, err := MetricNames(spec)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}
