package analysis_test

import (
	"errors"
	"reflect"
	"slices"
	"testing"

	"amnesiacflood/internal/analysis"
	"amnesiacflood/internal/graph/gen"
)

func TestFamiliesRegistered(t *testing.T) {
	want := []string{"bipartite", "coverage", "echo", "quantiles", "spantree", "termination"}
	got := analysis.Families()
	if !slices.Equal(got, want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for _, name := range want {
		fam, ok := analysis.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if fam.Doc == "" {
			t.Errorf("family %s has no doc", name)
		}
		if len(fam.Metrics) == 0 && fam.MetricsFor == nil {
			t.Errorf("family %s declares no metrics", name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"coverage",
		"termination",
		"bipartite",
		"spantree",
		"echo",
		"quantiles",
		"quantiles:metric=messages",
	}
	for _, s := range cases {
		spec, err := analysis.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("Parse(%q).String() = %q, want fixed point", s, got)
		}
		back, err := analysis.Parse(spec.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", spec.String(), err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("round trip changed %q: %#v vs %#v", s, spec, back)
		}
	}
}

func TestParseNormalisesCaseAndSpace(t *testing.T) {
	spec, err := analysis.Parse("  Quantiles : METRIC = messages ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.String() != "quantiles:metric=messages" {
		t.Fatalf("canonical form %q", spec.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"nosuch",
		"coverage:",
		"coverage:n=3",                // coverage has no parameters
		"quantiles:metric=",           // empty value
		"quantiles:zz=1",              // undeclared key
		"quantiles:metric=a,metric=b", // duplicate key
	}
	for _, s := range cases {
		if _, err := analysis.Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if _, err := analysis.Parse("nosuch"); !errors.Is(err, analysis.ErrUnknownAnalysis) {
		t.Errorf("unknown family error not matchable: %v", err)
	}
}

func TestBuildRejectsBadMetric(t *testing.T) {
	g := gen.MustBuild("path:n=4", 1)
	ctx := analysis.Context{Graph: g, GraphSpec: g.Name()}
	if _, err := analysis.Build("quantiles:metric=walltime", ctx); err == nil {
		t.Fatal("quantiles accepted a nondeterministic metric")
	}
	if _, err := analysis.Build("quantiles:metric=messages", ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMetricColumns(t *testing.T) {
	cols, err := analysis.MetricColumns([]string{"coverage", "quantiles:metric=messages"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"coverage.covered", "coverage.uncovered", "coverage.maxReceives",
		"coverage.receipts", "quantiles.messages"}
	if !slices.Equal(cols, want) {
		t.Fatalf("MetricColumns = %v, want %v", cols, want)
	}
	if _, err := analysis.MetricColumns([]string{"nosuch"}); err == nil {
		t.Fatal("MetricColumns accepted an unknown family")
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	g := gen.MustBuild("path:n=4", 1)
	ctx := analysis.Context{Graph: g, GraphSpec: g.Name()}
	if _, err := analysis.NewSet([]string{"coverage", "coverage"}, ctx); err == nil {
		t.Fatal("duplicate family accepted")
	}
	if _, err := analysis.NewSet([]string{"coverage", "termination"}, ctx); err != nil {
		t.Fatal(err)
	}
}
