package analysis_test

// The differential gate of the analysis registry: on seeded instance
// corpora (≥20 per family), the streaming analyses must reproduce the
// legacy post-hoc entry points they subsume — core.Analyze for coverage,
// detect.FromReport for bipartite, spantree.FromReport for spantree,
// termdetect.Run for echo — field for field, plus closed-form agreement of
// the termination analysis on the families whose exact constants the
// double-cover law pins (path, cycle, complete, star, hypercube).

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/detect"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
	"amnesiacflood/internal/sim"
	"amnesiacflood/internal/spantree"
	"amnesiacflood/internal/termdetect"
)

// corpus returns the shared differential instances: a seeded mix of
// deterministic and random families, bipartite and not, 24 in all.
func corpus(t *testing.T) []*graph.Graph {
	t.Helper()
	var out []*graph.Graph
	specs := []string{
		"path:n=17", "cycle:n=16", "cycle:n=17", "complete:n=9", "star:n=12",
		"grid:rows=5,cols=6", "hypercube:d=4", "petersen", "wheel:n=9",
		"lollipop:k=4,path=7", "barbell:k=4,path=5", "torus:rows=4,cols=6",
	}
	for _, spec := range specs {
		out = append(out, gen.MustBuild(spec, 1))
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, spec := range []string{
			"tree:n=40", "randconnected:n=40,p=0.08", "randnonbipartite:n=40,p=0.08",
		} {
			out = append(out, gen.MustBuild(spec, seed))
		}
	}
	if len(out) < 20 {
		t.Fatalf("corpus has %d instances, want >= 20", len(out))
	}
	return out
}

// runBoth executes one traced single-source amnesiac flood with the given
// analyses attached, returning the streamed result and the legacy post-hoc
// report over the same trace. Tracing disables analysis-driven early
// stopping, so the streamed state covers the full run exactly like the
// post-hoc walk.
func runBoth(t *testing.T, g *graph.Graph, src graph.NodeID, analyses ...string) (*sim.Session, engine.Result, *core.Report) {
	t.Helper()
	sess, err := sim.New(g,
		sim.WithProtocol("amnesiac"),
		sim.WithOrigins(src),
		sim.WithAnalysis(analyses...),
		sim.WithTrace(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sess, res, core.Analyze(g, []graph.NodeID{src}, res)
}

func TestCoverageMatchesCoreAnalyze(t *testing.T) {
	for _, g := range corpus(t) {
		for _, src := range []graph.NodeID{0, graph.NodeID(g.N() / 2)} {
			sess, res, rep := runBoth(t, g, src, "coverage")
			cov, ok := sess.Coverage()
			if !ok {
				t.Fatal("no coverage analyzer on session")
			}
			if !slices.Equal(cov.ReceiveCounts(), rep.ReceiveCounts) {
				t.Fatalf("%s from %d: receive counts diverge\nstream: %v\nlegacy: %v",
					g, src, cov.ReceiveCounts(), rep.ReceiveCounts)
			}
			if !slices.Equal(cov.FirstReceive(), rep.FirstReceive) {
				t.Fatalf("%s from %d: first-receive diverges", g, src)
			}
			if !slices.Equal(cov.LastReceive(), rep.LastReceive) {
				t.Fatalf("%s from %d: last-receive diverges", g, src)
			}
			m := res.Metrics
			if got, want := m["coverage.covered"] == 1, rep.Covered(); got != want {
				t.Fatalf("%s from %d: covered %t, legacy %t", g, src, got, want)
			}
			if got, want := int(m["coverage.maxReceives"]), rep.MaxReceives(); got != want {
				t.Fatalf("%s from %d: maxReceives %d, legacy %d", g, src, got, want)
			}
			if _, stray := m["termination.rounds"]; stray {
				t.Fatalf("%s from %d: unattached analysis leaked metrics", g, src)
			}
		}
	}
}

func TestBipartiteMatchesDetectFromReport(t *testing.T) {
	for _, g := range corpus(t) {
		src := graph.NodeID(0)
		sess, res, rep := runBoth(t, g, src, "bipartite")
		legacy, err := detect.FromReport(g, rep)
		if err != nil {
			t.Fatalf("%s: legacy verdict: %v", g, err)
		}
		m := res.Metrics
		if got := m["bipartite.bipartite"] == 1; got != legacy.Bipartite {
			t.Fatalf("%s: verdict %t, legacy %t", g, got, legacy.Bipartite)
		}
		if got, want := int(m["bipartite.eccentricity"]), legacy.Eccentricity; got != want {
			t.Fatalf("%s: eccentricity %d, legacy %d", g, got, want)
		}
		witnesses, ok := sess.Witnesses()
		if !ok {
			t.Fatal("no bipartite analyzer on session")
		}
		got := append([]graph.NodeID(nil), witnesses...)
		want := append([]graph.NodeID(nil), legacy.DoubleReceivers...)
		slices.Sort(got)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: witnesses %v, legacy %v", g, got, want)
		}
	}
}

// TestBipartiteEarlyStopMatchesProbe: without a trace, a bipartite-only
// session stops at the first witness, exactly like detect.Probe.
func TestBipartiteEarlyStopMatchesProbe(t *testing.T) {
	for _, spec := range []string{"cycle:n=9", "petersen", "complete:n=8", "wheel:n=11", "grid:rows=4,cols=5"} {
		g := gen.MustBuild(spec, 1)
		probe, err := detect.Probe(context.Background(), g, 0, sim.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithOrigins(0), sim.WithAnalysis("bipartite"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Metrics["bipartite.bipartite"] == 1; got != probe.Bipartite {
			t.Fatalf("%s: verdict %t, probe %t", g, got, probe.Bipartite)
		}
		if res.Rounds != probe.Rounds {
			t.Fatalf("%s: stopped at round %d, probe at %d", g, res.Rounds, probe.Rounds)
		}
		if res.Stopped != !probe.Bipartite {
			t.Fatalf("%s: stopped=%t for bipartite=%t", g, res.Stopped, probe.Bipartite)
		}
	}
}

func TestSpanTreeMatchesFromReport(t *testing.T) {
	for _, g := range corpus(t) {
		src := graph.NodeID(g.N() - 1)
		sess, res, rep := runBoth(t, g, src, "spantree")
		legacy, err := spantree.FromReport(g, rep)
		if err != nil {
			t.Fatal(err)
		}
		tree, ok := sess.SpanTree()
		if !ok {
			t.Fatal("no spantree analyzer on session")
		}
		if tree.Root != legacy.Root || !slices.Equal(tree.Parent, legacy.Parent) || !slices.Equal(tree.Depth, legacy.Depth) {
			t.Fatalf("%s from %d: streamed tree diverges from FromReport", g, src)
		}
		if err := tree.Validate(g); err != nil {
			t.Fatalf("%s from %d: %v", g, src, err)
		}
		maxDepth := 0
		for _, d := range legacy.Depth {
			if d > maxDepth {
				maxDepth = d
			}
		}
		if got := int(res.Metrics["spantree.depth"]); got != maxDepth {
			t.Fatalf("%s from %d: depth metric %d, legacy %d", g, src, got, maxDepth)
		}
		if got := int(res.Metrics["spantree.reached"]); got != g.N() {
			t.Fatalf("%s from %d: reached %d of %d", g, src, got, g.N())
		}
	}
}

func TestEchoMatchesTermdetect(t *testing.T) {
	for _, g := range corpus(t) {
		src := graph.NodeID(0)
		_, res, _ := runBoth(t, g, src, "echo")
		legacy, err := termdetect.Run(g, src)
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		checks := map[string]int{
			"echo.detectionRound": legacy.DetectionRound,
			"echo.floodRounds":    legacy.FloodRounds,
			"echo.floodMessages":  legacy.FloodMessages,
			"echo.ackMessages":    legacy.AckMessages,
			"echo.totalMessages":  legacy.TotalMessages(),
			"echo.covered":        legacy.CoverageCount(),
		}
		for key, want := range checks {
			if got := int(m[key]); got != want {
				t.Fatalf("%s: %s = %d, legacy %d", g, key, got, want)
			}
		}
	}
}

// TestTerminationClosedForms: on every recognised family spec the
// termination analysis must find the run matching its closed form, across
// sizes and sources — the paper's exact constants as a metric column.
func TestTerminationClosedForms(t *testing.T) {
	type inst struct {
		spec string
		srcs []graph.NodeID
	}
	var instances []inst
	for _, n := range []int{2, 5, 9, 16} {
		instances = append(instances, inst{fmt.Sprintf("path:n=%d", n), []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)}})
	}
	for _, n := range []int{3, 6, 9, 16, 21} {
		instances = append(instances, inst{fmt.Sprintf("cycle:n=%d", n), []graph.NodeID{0, graph.NodeID(n / 3)}})
	}
	for _, n := range []int{2, 3, 7, 12} {
		instances = append(instances, inst{fmt.Sprintf("complete:n=%d", n), []graph.NodeID{0, graph.NodeID(n - 1)}})
	}
	for _, n := range []int{4, 9, 17} {
		instances = append(instances, inst{fmt.Sprintf("star:n=%d", n), []graph.NodeID{0, graph.NodeID(n - 1)}})
	}
	for _, d := range []int{1, 3, 5, 7} {
		instances = append(instances, inst{fmt.Sprintf("hypercube:d=%d", d), []graph.NodeID{0, 1}})
	}
	if len(instances) < 20 {
		t.Fatalf("closed-form corpus has %d instances, want >= 20", len(instances))
	}
	for _, in := range instances {
		g := gen.MustBuild(in.spec, 1)
		sess, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithAnalysis("termination"))
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range in.srcs {
			results, err := sess.RunBatch(context.Background(), []graph.NodeID{src})
			if err != nil {
				t.Fatal(err)
			}
			m := results[0].Metrics
			cf, ok := m["termination.closedForm"]
			if !ok {
				t.Fatalf("%s: no closed form recognised", in.spec)
			}
			if m["termination.closedFormOK"] != 1 {
				t.Fatalf("%s from %d: rounds %g != closed form %g",
					in.spec, src, m["termination.rounds"], cf)
			}
			if m["termination.withinBounds"] != 1 {
				t.Fatalf("%s from %d: outside the e(src)..2D+1 window", in.spec, src)
			}
		}
	}
}

// TestSessionReuseAcrossBatch: one session's analyzers serve a whole
// RunBatch sweep — per-source metrics must equal fresh single-run sessions
// (buffer reuse cannot leak state between runs).
func TestSessionReuseAcrossBatch(t *testing.T) {
	g := gen.MustBuild("randnonbipartite:n=36,p=0.09", 7)
	sources := make([]graph.NodeID, g.N())
	for i := range sources {
		sources[i] = graph.NodeID(i)
	}
	shared, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithEngine(sim.Fast),
		sim.WithAnalysis("coverage", "termination", "bipartite"))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := shared.RunBatch(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range sources {
		fresh, err := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithEngine(sim.Fast),
			sim.WithOrigins(src), sim.WithAnalysis("coverage", "termination", "bipartite"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fresh.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Metrics) != len(batch[i].Metrics) {
			t.Fatalf("source %d: metric sets differ: %v vs %v", src, batch[i].Metrics, res.Metrics)
		}
		for k, v := range res.Metrics {
			if batch[i].Metrics[k] != v {
				t.Fatalf("source %d: metric %s = %g reused, %g fresh", src, k, batch[i].Metrics[k], v)
			}
		}
	}
}
