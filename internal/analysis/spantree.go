package analysis

import (
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// SpanTree extracts the rooted BFS spanning tree from a single-source
// flood, streaming: node v is adopted on its first receipt round by the
// smallest-ID sender of that round (sends arrive sorted by (From, To), so
// the first sender seen is the smallest) — the spantree.Recorder rule, with
// parent/depth buffers reused across runs. The analyzer signals readiness
// once every node is adopted, which on non-bipartite graphs is strictly
// before the flood dies.
type SpanTree struct {
	g         *graph.Graph
	root      graph.NodeID
	parent    []graph.NodeID
	depth     []int
	remaining int
	maxDepth  int
}

var _ Analyzer = (*SpanTree)(nil)

func init() {
	Register("spantree", Family{
		Doc:     "streaming BFS spanning tree of a single-source flood (early-stops once the tree spans)",
		Metrics: []string{"depth", "reached", "treeEdges", "complete"},
		New: func(ctx Context, v Values) (Analyzer, error) {
			n := ctx.Graph.N()
			return &SpanTree{
				g:      ctx.Graph,
				parent: make([]graph.NodeID, n),
				depth:  make([]int, n),
			}, nil
		},
	})
}

// Family implements Analyzer.
func (t *SpanTree) Family() string { return "spantree" }

// Start implements Analyzer.
func (t *SpanTree) Start(origins []graph.NodeID) error {
	root, err := singleOrigin("spantree", origins)
	if err != nil {
		return err
	}
	t.root = root
	for v := range t.parent {
		t.parent[v] = graph.NodeID(v)
		t.depth[v] = -1
	}
	t.depth[root] = 0
	t.remaining = t.g.N() - 1
	t.maxDepth = 0
	return nil
}

// ObserveRound implements engine.RoundObserver, adopting first-time
// receivers and signalling readiness once the tree spans the graph. Depth
// is the parent's depth plus one — well-defined in delivery order, since a
// sender was itself delivered to (or is the root) before it sends. Under
// the sync model that equals the delivery round (the BFS distance); under
// delay adversaries and schedules the rounds stretch but the tree stays a
// consistent first-delivery tree.
func (t *SpanTree) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		if t.depth[v] != -1 {
			continue // already adopted; same-round later senders are larger
		}
		t.parent[v] = s.From
		d := t.depth[s.From] + 1
		t.depth[v] = d
		if d > t.maxDepth {
			t.maxDepth = d
		}
		t.remaining--
	}
	return t.remaining == 0, nil
}

// Finish implements Analyzer.
func (t *SpanTree) Finish(res engine.Result) (Metrics, error) {
	reached := t.g.N() - t.remaining
	return Metrics{
		"depth":     float64(t.maxDepth),
		"reached":   float64(reached),
		"treeEdges": float64(reached - 1),
		"complete":  boolMetric(t.remaining == 0),
	}, nil
}

// Tree returns a copy of the tree built so far (complete once the observed
// flood reached every node), safe to retain across further runs.
func (t *SpanTree) Tree() *Tree {
	return &Tree{
		Root:   t.root,
		Parent: append([]graph.NodeID(nil), t.parent...),
		Depth:  append([]int(nil), t.depth...),
	}
}
