package analysis

import (
	"slices"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Coverage is the streaming port of the core.Analyze receive bookkeeping:
// per-node receive counts (a round counts once however many neighbours
// delivered copies), first/last receive rounds, and the derived covered /
// max-receives verdicts the paper's lemmas quantify over. All buffers are
// sized once and reused across runs.
type Coverage struct {
	origins       []graph.NodeID
	isOrigin      []bool
	receiveCounts []int
	firstReceive  []int
	lastReceive   []int
	receipts      int
}

var _ Analyzer = (*Coverage)(nil)

func init() {
	Register("coverage", Family{
		Doc:     "per-node receive counts, coverage, and max receives (streams what core.Analyze re-walked)",
		Metrics: []string{"covered", "uncovered", "maxReceives", "receipts"},
		New: func(ctx Context, v Values) (Analyzer, error) {
			n := ctx.Graph.N()
			return &Coverage{
				isOrigin:      make([]bool, n),
				receiveCounts: make([]int, n),
				firstReceive:  make([]int, n),
				lastReceive:   make([]int, n),
			}, nil
		},
	})
}

// Family implements Analyzer.
func (c *Coverage) Family() string { return "coverage" }

// Start implements Analyzer, resetting the reusable buffers.
func (c *Coverage) Start(origins []graph.NodeID) error {
	for _, o := range c.origins {
		c.isOrigin[o] = false
	}
	c.origins = append(c.origins[:0], origins...)
	slices.Sort(c.origins)
	c.origins = slices.Compact(c.origins)
	for _, o := range c.origins {
		c.isOrigin[o] = true
	}
	clear(c.receiveCounts)
	clear(c.firstReceive)
	clear(c.lastReceive)
	c.receipts = 0
	return nil
}

// ObserveRound implements engine.RoundObserver. It never requests a stop:
// coverage is a whole-run property.
func (c *Coverage) ObserveRound(rec engine.RoundRecord) (bool, error) {
	for _, s := range rec.Sends {
		v := s.To
		// A node receiving from several neighbours in one round counts the
		// round once, exactly like core.Analyze over RoundRecord.Receivers.
		if c.lastReceive[v] == rec.Round {
			continue
		}
		c.receiveCounts[v]++
		if c.firstReceive[v] == 0 {
			c.firstReceive[v] = rec.Round
		}
		c.lastReceive[v] = rec.Round
		c.receipts++
	}
	return false, nil
}

// Finish implements Analyzer.
func (c *Coverage) Finish(res engine.Result) (Metrics, error) {
	uncovered, maxReceives := 0, 0
	for v, n := range c.receiveCounts {
		if n == 0 && !c.isOrigin[v] {
			uncovered++
		}
		if n > maxReceives {
			maxReceives = n
		}
	}
	return Metrics{
		"covered":     boolMetric(uncovered == 0),
		"uncovered":   float64(uncovered),
		"maxReceives": float64(maxReceives),
		"receipts":    float64(c.receipts),
	}, nil
}

// Origins returns the run's sorted, deduplicated origin set.
func (c *Coverage) Origins() []graph.NodeID { return c.origins }

// ReceiveCounts returns the per-node count of distinct rounds each node
// received M in. The slice is the analyzer's reusable buffer: valid until
// the next Start, not to be mutated.
func (c *Coverage) ReceiveCounts() []int { return c.receiveCounts }

// FirstReceive returns the per-node first receive round (0 = never); same
// buffer-reuse contract as ReceiveCounts.
func (c *Coverage) FirstReceive() []int { return c.firstReceive }

// LastReceive returns the per-node last receive round (0 = never); same
// buffer-reuse contract as ReceiveCounts.
func (c *Coverage) LastReceive() []int { return c.lastReceive }
