package analysis_test

import (
	"reflect"
	"testing"

	"amnesiacflood/internal/analysis"
)

// FuzzAnalysisParse asserts the spec grammar's two safety properties on
// arbitrary input: Parse never panics, and every accepted spec round-trips
// through its canonical String form — same string, same parsed Spec. This
// is the same contract the graph-spec and model-spec fuzzers enforce, so
// all five façade axes share one grammar discipline.
func FuzzAnalysisParse(f *testing.F) {
	for _, name := range analysis.Families() {
		f.Add(name)
	}
	f.Add("quantiles:metric=messages")
	f.Add("quantiles:metric=rounds")
	f.Add("  Coverage  ")
	f.Add("coverage:")
	f.Add("quantiles:metric==x")
	f.Add("quantiles:metric=a,metric=b")
	f.Add(":::")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := analysis.Parse(s)
		if err != nil {
			return
		}
		canonical := spec.String()
		back, err := analysis.Parse(canonical)
		if err != nil {
			t.Fatalf("Parse(%q) ok but Parse(String()=%q) failed: %v", s, canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round trip changed the spec: %#v vs %#v", spec, back)
		}
		if again := back.String(); again != canonical {
			t.Fatalf("String not a fixed point: %q then %q", canonical, again)
		}
	})
}
