package analysis

import (
	"fmt"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/termdetect"
)

// Echo reports the Dijkstra–Scholten termination-detection baseline for the
// run's (graph, origin) pair: what classic flooding plus acknowledgement
// echoes would cost to let the origin *know* the flood is over — the
// contrast the paper's introduction draws against amnesiac flooding's
// silent termination. Unlike the other families it is not computed from the
// observed round stream (the echo protocol is a different algorithm); it
// runs termdetect.Run once per Finish and pairs its numbers with the
// observed run's, so suites get both sides of the trade-off in one row.
type Echo struct {
	g      *graph.Graph
	source graph.NodeID
}

var _ Analyzer = (*Echo)(nil)

func init() {
	Register("echo", Family{
		Doc:     "Dijkstra–Scholten detection baseline (classic flooding + acks) for the same graph and origin",
		Metrics: []string{"detectionRound", "floodRounds", "floodMessages", "ackMessages", "totalMessages", "covered", "messageOverhead"},
		New: func(ctx Context, v Values) (Analyzer, error) {
			return &Echo{g: ctx.Graph}, nil
		},
	})
}

// Family implements Analyzer.
func (e *Echo) Family() string { return "echo" }

// Start implements Analyzer.
func (e *Echo) Start(origins []graph.NodeID) error {
	src, err := singleOrigin("echo", origins)
	if err != nil {
		return err
	}
	e.source = src
	return nil
}

// ObserveRound implements engine.RoundObserver; the baseline does not
// consume the observed stream and never requests a stop.
func (e *Echo) ObserveRound(rec engine.RoundRecord) (bool, error) {
	return false, nil
}

// Finish implements Analyzer, running the detection baseline.
// messageOverhead is the baseline's total traffic relative to the observed
// run's (2x the classic flood, compared against whatever actually ran).
func (e *Echo) Finish(res engine.Result) (Metrics, error) {
	det, err := termdetect.Run(e.g, e.source)
	if err != nil {
		return nil, fmt.Errorf("echo baseline: %w", err)
	}
	m := Metrics{
		"detectionRound": float64(det.DetectionRound),
		"floodRounds":    float64(det.FloodRounds),
		"floodMessages":  float64(det.FloodMessages),
		"ackMessages":    float64(det.AckMessages),
		"totalMessages":  float64(det.TotalMessages()),
		"covered":        float64(det.CoverageCount()),
	}
	if res.TotalMessages > 0 {
		m["messageOverhead"] = float64(det.TotalMessages()) / float64(res.TotalMessages)
	}
	return m, nil
}
