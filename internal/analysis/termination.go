package analysis

import (
	"strconv"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/algo"
	"amnesiacflood/internal/graph/gen"
)

// Termination measures how a run ended against the paper's predictions:
// the observed round and message totals, the e(source) .. 2D+1 termination
// window (exact e(source) on bipartite graphs — Lemma 2.1 / Theorem 3.3),
// and, when the graph spec names a family with a known closed form (path,
// cycle, complete, star, hypercube), the exact predicted round count.
// Graph-level quantities (bipartiteness, diameter) are computed lazily once
// per analyzer and reused across every run of the session.
type Termination struct {
	g      *graph.Graph
	origin graph.NodeID
	single bool

	bipartite     bool
	bipartiteOnce bool
	diam          int
	diamOnce      bool
	ecc           eccCache

	// closed-form recognition, resolved once from the graph spec
	family string // "" when the spec is absent or has no closed form
	n      int    // size parameter of the recognised family
}

var _ Analyzer = (*Termination)(nil)

func init() {
	Register("termination", Family{
		Doc: "termination round and messages vs. the paper's e(src)..2D+1 window and per-family closed forms",
		Metrics: []string{"rounds", "messages", "eccentricity", "boundLower",
			"boundUpper", "boundExact", "withinBounds", "closedForm", "closedFormOK"},
		New: func(ctx Context, v Values) (Analyzer, error) {
			t := &Termination{g: ctx.Graph}
			t.recognise(ctx.GraphSpec)
			return t, nil
		},
	})
}

// recognise resolves the closed-form family, if any, from the canonical
// graph spec. Registry-built graphs are named with their fully explicit
// spec, so the size parameter is always present; hand-named graphs that do
// not parse simply get no closed-form metrics.
func (t *Termination) recognise(spec string) {
	parsed, err := gen.Parse(spec)
	if err != nil {
		return
	}
	param := func(name string) (int, bool) {
		raw, ok := parsed.Params[name]
		if !ok {
			// Fall back to the declared default for hand-written specs.
			fam, famOK := gen.Lookup(parsed.Family)
			if !famOK {
				return 0, false
			}
			for _, p := range fam.Params {
				if p.Name == name {
					raw = p.Default
					ok = true
				}
			}
			if !ok {
				return 0, false
			}
		}
		n, err := strconv.Atoi(raw)
		return n, err == nil
	}
	switch parsed.Family {
	case "path", "cycle", "complete", "star":
		if n, ok := param("n"); ok {
			t.family, t.n = parsed.Family, n
		}
	case "hypercube":
		if d, ok := param("d"); ok {
			t.family, t.n = parsed.Family, d
		}
	}
}

// closedForm returns the family's exact single-source termination round,
// if recognised. The constants are the double-cover law specialised per
// family (internal/theory/closedform_test.go pins them against the
// simulator): paths terminate at the source's eccentricity max(s, n-1-s),
// even cycles at n/2, odd cycles at n, cliques at 3 (1 for K2, 0 for K1),
// stars at 1 from the hub and 2 from a leaf, hypercubes at d.
func (t *Termination) closedForm(src graph.NodeID) (int, bool) {
	s := int(src)
	switch t.family {
	case "path":
		return max(s, t.n-1-s), true
	case "cycle":
		if t.n%2 == 0 {
			return t.n / 2, true
		}
		return t.n, true
	case "complete":
		switch {
		case t.n <= 1:
			return 0, true
		case t.n == 2:
			return 1, true
		default:
			return 3, true
		}
	case "star":
		switch {
		case t.n <= 1:
			return 0, true
		case s == 0: // gen.Star's hub is node 0
			return 1, true
		default:
			return 2, true
		}
	case "hypercube":
		return t.n, true
	default:
		return 0, false
	}
}

// Family implements Analyzer.
func (t *Termination) Family() string { return "termination" }

// Start implements Analyzer.
func (t *Termination) Start(origins []graph.NodeID) error {
	t.single = len(origins) == 1
	if t.single {
		t.origin = origins[0]
	}
	return nil
}

// ObserveRound implements engine.RoundObserver; the metrics derive from the
// engine result, so observation is a no-op that never requests a stop (the
// termination round is a whole-run property).
func (t *Termination) ObserveRound(rec engine.RoundRecord) (bool, error) {
	return false, nil
}

// Finish implements Analyzer. The bound and closed-form metrics apply only
// to single-source runs under the synchronous model that ran to their
// natural end; truncated, multi-source, or non-sync runs report the raw
// rounds/messages alone.
func (t *Termination) Finish(res engine.Result) (Metrics, error) {
	m := Metrics{
		"rounds":   float64(res.Rounds),
		"messages": float64(res.TotalMessages),
	}
	if !t.single || res.Stopped || !res.Terminated || (res.Model != "" && res.Model != "sync") {
		return m, nil
	}
	ecc := t.ecc.of(t.g, t.origin)
	m["eccentricity"] = float64(ecc)
	if !t.bipartiteOnce {
		t.bipartite = algo.IsBipartite(t.g)
		t.bipartiteOnce = true
	}
	lower, upper := ecc, ecc
	if !t.bipartite {
		if !t.diamOnce {
			t.diam = algo.Diameter(t.g)
			t.diamOnce = true
		}
		upper = 2*t.diam + 1
	}
	m["boundLower"] = float64(lower)
	m["boundUpper"] = float64(upper)
	m["boundExact"] = boolMetric(t.bipartite)
	m["withinBounds"] = boolMetric(res.Rounds >= lower && res.Rounds <= upper)
	if cf, ok := t.closedForm(t.origin); ok {
		m["closedForm"] = float64(cf)
		m["closedFormOK"] = boolMetric(res.Rounds == cf)
	}
	return m, nil
}
