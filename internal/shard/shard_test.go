package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"amnesiacflood/internal/scenario"
	"amnesiacflood/internal/shard"

	// Protocols under test self-register on import.
	_ "amnesiacflood/internal/classic"
	_ "amnesiacflood/internal/core"
)

// quiet drops lease-lifecycle chatter from test output.
var quiet = slog.New(slog.DiscardHandler)

// testMatrix is the invariance matrix: several session-sharing groups (three
// graph families × two protocols), two seeds each.
func testMatrix(t *testing.T) []scenario.Spec {
	t.Helper()
	specs, err := scenario.Matrix{
		Graphs:    []string{"cycle:n=9", "grid:rows=3,cols=4", "path:n=6"},
		Protocols: []string{"amnesiac", "classic"},
		Seeds:     []int64{1, 2},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// normalize order-normalises results: sorted by spec ID with the two
// execution-dependent fields zeroed.
func normalize(results []scenario.Result) []scenario.Result {
	out := append([]scenario.Result(nil), results...)
	for i := range out {
		out[i].WallMicros = 0
		out[i].Attempts = 0
	}
	scenario.SortResults(out)
	return out
}

// jsonLines renders normalised results exactly as the JSONL sink would — the
// byte-identity form the subsystem promises.
func jsonLines(t *testing.T, results []scenario.Result) string {
	t.Helper()
	var b strings.Builder
	for _, res := range normalize(results) {
		line, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// baseline runs specs through the ordinary single-process runner.
func baseline(t *testing.T, specs []scenario.Spec) []scenario.Result {
	t.Helper()
	results, err := (&scenario.Runner{}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// shardedRun executes specs through a coordinator served over real HTTP with
// n workers, returning the merged results and the final coordinator status.
// mkClient, when non-nil, builds worker i's HTTP client (fault injection).
func shardedRun(t *testing.T, specs []scenario.Spec, n int, cfg shard.CoordinatorConfig,
	mkClient func(i int, cancel context.CancelFunc) *http.Client) ([]scenario.Result, shard.StatusResponse) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	coord, err := shard.NewCoordinator(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		workerCtx, workerCancel := context.WithCancel(ctx)
		defer workerCancel()
		wcfg := shard.WorkerConfig{
			Coordinator:  srv.URL,
			Name:         fmt.Sprintf("w%d", i),
			PollInterval: 2 * time.Millisecond,
			Logger:       quiet,
		}
		if mkClient != nil {
			wcfg.Client = mkClient(i, workerCancel)
		}
		w, err := shard.NewWorker(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(workerCtx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	results, err := coord.Wait(ctx)
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return results, coord.Status()
}

// TestShardWorkerCountInvariance: the same matrix through 1, 2, 4, and 8
// workers merges byte-identical (order-normalised JSONL) to a single-process
// run.
func TestShardWorkerCountInvariance(t *testing.T) {
	specs := testMatrix(t)
	want := jsonLines(t, baseline(t, specs))
	for _, n := range []int{1, 2, 4, 8} {
		results, st := shardedRun(t, specs, n, shard.CoordinatorConfig{}, nil)
		if got := jsonLines(t, results); got != want {
			t.Errorf("%d workers diverged from the single-process baseline:\n%s\nvs\n%s", n, got, want)
		}
		if st.Rows != len(specs) || !st.Complete {
			t.Errorf("%d workers: status %+v, want %d rows complete", n, st, len(specs))
		}
	}
}

// killOnComplete fails a worker's first result upload and cancels the worker
// — a worker killed mid-suite, after computing a group but before delivering
// it. Its lease must expire and another worker must steal the group.
type killOnComplete struct {
	kill context.CancelFunc
	once sync.Once
}

func (k *killOnComplete) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/v1/complete") {
		k.once.Do(k.kill)
		return nil, errors.New("worker killed mid-upload")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestShardKilledWorkerSteal: one of two workers dies mid-suite holding a
// lease; the survivor steals the group and the merged output still matches
// the single-process baseline.
func TestShardKilledWorkerSteal(t *testing.T) {
	specs := testMatrix(t)
	want := jsonLines(t, baseline(t, specs))
	cfg := shard.CoordinatorConfig{LeaseTTL: 50 * time.Millisecond}
	results, st := shardedRun(t, specs, 2, cfg, func(i int, cancel context.CancelFunc) *http.Client {
		if i != 0 {
			return nil // default client
		}
		return &http.Client{Transport: &killOnComplete{kill: cancel}}
	})
	if got := jsonLines(t, results); got != want {
		t.Fatalf("suite with a killed worker diverged:\n%s\nvs\n%s", got, want)
	}
	if st.Steals == 0 {
		t.Error("killed worker's lease was never stolen")
	}
}

// TestShardChaosInvariance: a sharded suite under deterministic fault
// injection with retries converges to the same bytes as the clean baseline —
// the differential chaos gate, distributed.
func TestShardChaosInvariance(t *testing.T) {
	specs := testMatrix(t)
	want := jsonLines(t, baseline(t, specs))
	cfg := shard.CoordinatorConfig{
		Run: shard.RunConfig{
			Chaos:     "chaos:rate=0.15,kinds=err|panic|stall,seed=7,stall=1ms",
			Retries:   8,
			BackoffMs: 1,
			TimeoutMs: 30_000,
		},
	}
	results, _ := shardedRun(t, specs, 4, cfg, nil)
	if got := jsonLines(t, results); got != want {
		t.Fatalf("chaotic sharded suite diverged from the clean baseline:\n%s\nvs\n%s", got, want)
	}
}

// TestShardBadChaosSpec: a malformed chaos spec fails coordinator
// construction, before any worker is involved.
func TestShardBadChaosSpec(t *testing.T) {
	if _, err := shard.NewCoordinator(testMatrix(t), shard.CoordinatorConfig{
		Run: shard.RunConfig{Chaos: "chaos:rate=2"}, Logger: quiet,
	}); err == nil {
		t.Fatal("coordinator accepted a chaos rate outside [0,1]")
	}
	if _, err := shard.NewCoordinator(nil, shard.CoordinatorConfig{Logger: quiet}); err == nil {
		t.Fatal("coordinator accepted an empty suite")
	}
}

// TestShardResume: a coordinator restarted over a completed manifest replays
// every row without leasing anything; one restarted over a partial manifest
// leases only the missing groups.
func TestShardResume(t *testing.T) {
	specs := testMatrix(t)
	want := jsonLines(t, baseline(t, specs))
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	m, err := scenario.OpenManifest(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	first, st := shardedRun(t, specs, 2, shard.CoordinatorConfig{Manifest: m}, nil)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := jsonLines(t, first); got != want {
		t.Fatalf("journaled suite diverged:\n%s\nvs\n%s", got, want)
	}
	if st.Replayed != 0 {
		t.Fatalf("fresh run replayed %d rows", st.Replayed)
	}

	// Restart over the completed journal: everything replays, nothing runs.
	m2, err := scenario.OpenManifest(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	coord, err := shard.NewCoordinator(specs, shard.CoordinatorConfig{Manifest: m2, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("fully journaled coordinator is not immediately done")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resumed, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := jsonLines(t, resumed); got != want {
		t.Fatalf("resumed suite diverged:\n%s\nvs\n%s", got, want)
	}
	if st := coord.Status(); st.Replayed != len(specs) {
		t.Fatalf("resume replayed %d rows, want %d", st.Replayed, len(specs))
	}
}

// TestShardPartialResume: a manifest journaling half the suite resumes with
// only the rest leased out, and the merge is still byte-identical.
func TestShardPartialResume(t *testing.T) {
	specs := testMatrix(t)
	base := baseline(t, specs)
	want := jsonLines(t, base)
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	m, err := scenario.OpenManifest(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range base[:len(base)/2] {
		if err := m.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := scenario.OpenManifest(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	results, st := shardedRun(t, specs, 2, shard.CoordinatorConfig{Manifest: m2}, nil)
	if got := jsonLines(t, results); got != want {
		t.Fatalf("partially resumed suite diverged:\n%s\nvs\n%s", got, want)
	}
	if st.Replayed != len(base)/2 {
		t.Fatalf("resume replayed %d rows, want %d", st.Replayed, len(base)/2)
	}
}

// TestShardGhostLeaseExpiry drives the lease protocol over HTTP by hand: a
// ghost worker leases a group and vanishes; after the TTL its renewal is
// stale and the group is re-leased to someone else.
func TestShardGhostLeaseExpiry(t *testing.T) {
	specs := testMatrix(t)
	coord, err := shard.NewCoordinator(specs, shard.CoordinatorConfig{
		LeaseTTL: 30 * time.Millisecond, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var ghost shard.LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", shard.LeaseRequest{Worker: "ghost"}, &ghost)
	if ghost.Status != shard.StatusLease {
		t.Fatalf("ghost lease status %q", ghost.Status)
	}
	if len(ghost.Specs) == 0 || ghost.TTLMs != 30 {
		t.Fatalf("ghost lease malformed: %+v", ghost)
	}

	// Within the TTL the lease renews; after it, it is stale.
	var renew shard.RenewResponse
	postJSON(t, srv.URL+"/v1/renew", shard.RenewRequest{LeaseID: ghost.LeaseID, Worker: "ghost"}, &renew)
	if renew.Status != shard.StatusOK {
		t.Fatalf("live renewal answered %q", renew.Status)
	}
	time.Sleep(60 * time.Millisecond)

	var steal shard.LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", shard.LeaseRequest{Worker: "thief"}, &steal)
	if steal.Status != shard.StatusLease || steal.GroupID != ghost.GroupID {
		t.Fatalf("thief got %+v, want the ghost's group %s", steal, ghost.GroupID)
	}
	postJSON(t, srv.URL+"/v1/renew", shard.RenewRequest{LeaseID: ghost.LeaseID, Worker: "ghost"}, &renew)
	if renew.Status != shard.StatusStale {
		t.Fatalf("expired renewal answered %q, want %q", renew.Status, shard.StatusStale)
	}
	if st := coord.Status(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}

	// The ghost finishes anyway and uploads: first-write-wins merges its
	// rows (the thief hasn't delivered), and the late thief upload is stale.
	rows, err := (&scenario.Runner{}).Run(context.Background(), ghost.Specs)
	if err != nil {
		t.Fatal(err)
	}
	var done shard.CompleteResponse
	postJSON(t, srv.URL+"/v1/complete", shard.CompleteRequest{
		LeaseID: ghost.LeaseID, GroupID: ghost.GroupID, Worker: "ghost", Rows: rows,
	}, &done)
	if done.Merged != len(rows) {
		t.Fatalf("ghost upload merged %d rows, want %d", done.Merged, len(rows))
	}
	postJSON(t, srv.URL+"/v1/complete", shard.CompleteRequest{
		LeaseID: steal.LeaseID, GroupID: steal.GroupID, Worker: "thief", Rows: rows,
	}, &done)
	if done.Status != shard.StatusStale || done.Merged != 0 {
		t.Fatalf("duplicate upload answered %+v, want stale/0", done)
	}
}

// TestShardHTTPSurface covers the auxiliary endpoints and request
// validation: healthz flips to complete, status counts add up, malformed
// and unknown-field bodies are rejected.
func TestShardHTTPSurface(t *testing.T) {
	specs := testMatrix(t)
	coord, err := shard.NewCoordinator(specs, shard.CoordinatorConfig{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string               `json:"status"`
		Stats  shard.StatusResponse `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Stats.Specs != len(specs) || health.Stats.Pending == 0 {
		t.Fatalf("healthz = %+v", health)
	}

	for _, body := range []string{"{", `{"nosuchfield":1}`} {
		resp, err := http.Post(srv.URL+"/v1/lease", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q answered %d, want 400", body, resp.StatusCode)
		}
	}

	var done shard.CompleteResponse
	if err := postJSONErr(srv.URL+"/v1/complete", shard.CompleteRequest{
		LeaseID: "none", GroupID: "nosuch", Worker: "x",
	}, &done); err == nil {
		t.Error("completion for an unknown group succeeded")
	}
}

// postJSON posts one request and decodes the response, failing the test on
// any error.
func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	if err := postJSONErr(url, body, out); err != nil {
		t.Fatal(err)
	}
}

func postJSONErr(url string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s answered %d: %s", url, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
