package shard

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
)

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://10.0.0.5:9090" (mandatory).
	Coordinator string
	// Name attributes leases and uploads; default "worker".
	Name string
	// Pool bounds the local scenario.Runner pool each leased group runs
	// over; <= 0 means scenario.DefaultWorkers.
	Pool int
	// Client is the HTTP client; default http.DefaultClient with a 30s
	// per-call timeout.
	Client *http.Client
	// PollInterval is the idle sleep when the coordinator answers
	// StatusWait without a retry hint, and the base backoff on transport
	// errors. Default 200ms.
	PollInterval time.Duration
	// MaxErrors bounds consecutive transport failures before the worker
	// gives up on the coordinator. Default 30.
	MaxErrors int
	// Logger receives lease-lifecycle events as structured records.
	// Default slog.Default(); use slog.New(slog.DiscardHandler) to
	// silence.
	Logger *slog.Logger
	// Metrics, when non-nil, receives the worker's telemetry: the
	// afshard_worker_* counters and the scenario_* families of every lease
	// runner (scenario.Telemetry). In-process fleets (afbench -shard-local)
	// share one registry across workers, so the totals aggregate.
	Metrics *obs.Registry
}

// Worker pulls spec-group leases from a coordinator, executes them through
// the ordinary resilient scenario.Runner (the coordinator's RunConfig arms
// the same watchdog/retry/chaos policy on every worker), and uploads the
// rows gzip-compressed. A worker holds no suite state: kill it at any point
// and its lease expires back to the pool.
type Worker struct {
	cfg WorkerConfig
	// tel/leases/uploads are nil without a Metrics registry (recording is
	// nil-safe for tel; the counters are guarded).
	tel     *scenario.Telemetry
	leases  *obs.Counter
	uploads *obs.Counter
}

// NewWorker validates the config and returns a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if strings.TrimSpace(cfg.Coordinator) == "" {
		return nil, fmt.Errorf("shard: worker needs a coordinator URL")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.MaxErrors <= 0 {
		cfg.MaxErrors = 30
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	w := &Worker{cfg: cfg}
	if cfg.Metrics != nil {
		w.tel = scenario.NewTelemetry(cfg.Metrics)
		w.leases = cfg.Metrics.Counter("afshard_worker_leases_total", "Leases this worker executed.")
		w.uploads = cfg.Metrics.Counter("afshard_worker_uploads_total", "Completed-group uploads this worker sent.")
	}
	return w, nil
}

// Run polls the coordinator until it reports the suite done (returning nil),
// the context is cancelled (returning its error), or MaxErrors consecutive
// transport failures accumulate (returning the last one).
func (w *Worker) Run(ctx context.Context) error {
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.cfg.Name}, &lease, false); err != nil {
			consecutive++
			if consecutive >= w.cfg.MaxErrors {
				return fmt.Errorf("shard: coordinator unreachable after %d attempts: %w", consecutive, err)
			}
			if !sleepCtx(ctx, w.backoff(consecutive)) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch lease.Status {
		case StatusDone:
			return nil
		case StatusWait:
			wait := time.Duration(lease.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = w.cfg.PollInterval
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
		case StatusLease:
			if err := w.executeLease(ctx, &lease); err != nil {
				return err
			}
		default:
			return fmt.Errorf("shard: coordinator answered unknown status %q", lease.Status)
		}
	}
}

// executeLease runs one granted group and uploads its rows, heartbeating
// the lease at TTL/3 while the run is in flight. A stale heartbeat means
// the lease was reassigned: the group run is cancelled and its rows are
// dropped (the thief's rows are identical anyway).
func (w *Worker) executeLease(ctx context.Context, lease *LeaseResponse) error {
	if w.leases != nil {
		w.leases.Inc()
	}
	runner := &scenario.Runner{
		Workers:    w.cfg.Pool,
		RunTimeout: lease.Config.runTimeout(),
		Retries:    lease.Config.Retries,
		Backoff:    lease.Config.backoff(),
		Metrics:    w.tel,
	}
	if lease.Config.Chaos != "" {
		inj, err := chaos.Parse(lease.Config.Chaos)
		if err != nil {
			return fmt.Errorf("shard: coordinator sent a bad chaos spec: %w", err)
		}
		runner.Chaos = inj
	}

	groupCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go w.heartbeat(groupCtx, lease, cancel, hbDone)

	rows, err := runner.Run(groupCtx, lease.Specs)
	cancel()
	<-hbDone
	if err != nil {
		// Either the suite context was cancelled (propagate) or the
		// heartbeat found the lease stale (abandon the group silently; it
		// is someone else's now).
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logger.Warn("shard: abandoning group", "worker", w.cfg.Name, "group", lease.GroupID, "err", err)
		return nil
	}
	var resp CompleteResponse
	req := CompleteRequest{LeaseID: lease.LeaseID, GroupID: lease.GroupID, Worker: w.cfg.Name, Rows: rows}
	for attempt := 1; ; attempt++ {
		err = w.post(ctx, "/v1/complete", req, &resp, true)
		if err == nil {
			break
		}
		if attempt >= w.cfg.MaxErrors {
			return fmt.Errorf("shard: uploading %s failed after %d attempts: %w", lease.GroupID, attempt, err)
		}
		if !sleepCtx(ctx, w.backoff(attempt)) {
			return ctx.Err()
		}
	}
	if w.uploads != nil {
		w.uploads.Inc()
	}
	w.cfg.Logger.Info("shard: completed group", "worker", w.cfg.Name, "group", lease.GroupID, "rows", len(rows), "status", resp.Status)
	return nil
}

// heartbeat renews the lease every TTL/3 until ctx is cancelled, cancelling
// the group run if the coordinator reports the lease stale or the suite
// done.
func (w *Worker) heartbeat(ctx context.Context, lease *LeaseResponse, cancel context.CancelFunc, done chan<- struct{}) {
	defer close(done)
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	if ttl <= 0 {
		return
	}
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			var resp RenewResponse
			if err := w.post(ctx, "/v1/renew", RenewRequest{LeaseID: lease.LeaseID, Worker: w.cfg.Name}, &resp, false); err != nil {
				continue // transient; the lease survives until its TTL
			}
			if resp.Status != StatusOK {
				w.cfg.Logger.Warn("shard: lease no longer ours; cancelling group", "worker", w.cfg.Name, "lease", lease.LeaseID, "status", resp.Status)
				cancel()
				return
			}
		}
	}
}

// post sends one JSON request and decodes the JSON response. compress
// gzips the body (Content-Encoding: gzip) — always used for row uploads.
func (w *Worker) post(ctx context.Context, path string, body, out any, compress bool) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if compress {
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else {
		buf.Write(payload)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if compress {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s answered %d: %s", path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// backoff is the worker's transport-retry delay: PollInterval doubled per
// consecutive failure, capped at 16x.
func (w *Worker) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 4 {
		shift = 4
	}
	return w.cfg.PollInterval << shift
}

// sleepCtx sleeps for d or until ctx is done, reporting which.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
