package shard

import (
	"time"

	"amnesiacflood/internal/scenario"
)

// This file is the coordinator/worker wire format. The payload of the
// protocol is scenario data that already round-trips as JSON: every axis of
// a scenario.Spec is a canonical spec string of its registry (the
// internal/specgrammar grammar internal/service also speaks), and every
// scenario.Result is a deterministic function of its Spec, so rows merged
// from any worker are byte-identical to rows the coordinator would have
// computed itself.

// Lease statuses a coordinator answers a lease/renew request with.
const (
	// StatusLease grants a spec group (LeaseResponse carries it).
	StatusLease = "lease"
	// StatusWait means every remaining group is currently leased; poll
	// again after RetryMs.
	StatusWait = "wait"
	// StatusDone means the suite is complete (or aborted): the worker
	// should exit.
	StatusDone = "done"
	// StatusOK acknowledges a completion or renewal.
	StatusOK = "ok"
	// StatusStale rejects a completion/renewal whose lease is no longer
	// current (the group expired and was reassigned, or is already done).
	StatusStale = "stale"
)

// LeaseRequest is the body of POST /v1/lease: a worker asking for work.
type LeaseRequest struct {
	// Worker names the requester (free-form; used for lease attribution
	// and logs).
	Worker string `json:"worker"`
}

// RunConfig is the execution policy the coordinator pushes to every worker
// with each lease, so a suite runs under one uniform resilience policy no
// matter which machine executes which group (the determinism contract needs
// chaos injection, retries, and watchdogs to be worker-independent).
type RunConfig struct {
	// TimeoutMs is the per-run watchdog (scenario.Runner.RunTimeout).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Retries and BackoffMs mirror scenario.Runner.Retries/Backoff.
	Retries   int   `json:"retries,omitempty"`
	BackoffMs int64 `json:"backoffMs,omitempty"`
	// Chaos is the fault-injection spec every worker arms
	// (internal/chaos grammar); empty means no injection.
	Chaos string `json:"chaos,omitempty"`
	// MaxRoundsHint is informational; specs carry their own MaxRounds.
	MaxRoundsHint int `json:"maxRoundsHint,omitempty"`
}

// runTimeout converts the wire policy back to runner fields.
func (c RunConfig) runTimeout() time.Duration { return time.Duration(c.TimeoutMs) * time.Millisecond }

func (c RunConfig) backoff() time.Duration { return time.Duration(c.BackoffMs) * time.Millisecond }

// LeaseResponse answers POST /v1/lease.
type LeaseResponse struct {
	// Status is StatusLease, StatusWait, or StatusDone.
	Status string `json:"status"`
	// LeaseID identifies the grant; completions and renewals must echo it.
	LeaseID string `json:"leaseId,omitempty"`
	// GroupID names the granted spec group.
	GroupID string `json:"groupId,omitempty"`
	// Specs is the granted group's spec list (StatusLease only). All specs
	// of a group share scenario.GroupKey, so the executing runner gets
	// session/arena reuse.
	Specs []scenario.Spec `json:"specs,omitempty"`
	// TTLMs is the lease duration: the worker must complete or renew
	// within it, or the coordinator reassigns the group. A duration rather
	// than a wall-clock instant, so machines need not agree on clocks.
	TTLMs int64 `json:"ttlMs,omitempty"`
	// RetryMs tells a StatusWait worker how long to sleep before polling
	// again.
	RetryMs int64 `json:"retryMs,omitempty"`
	// Config is the uniform execution policy (StatusLease only).
	Config RunConfig `json:"config,omitempty"`
}

// CompleteRequest is the body of POST /v1/complete: one executed group's
// rows. Bodies may be gzip-compressed (Content-Encoding: gzip) — the worker
// always compresses, keeping large row uploads cheap on the wire.
type CompleteRequest struct {
	LeaseID string `json:"leaseId"`
	GroupID string `json:"groupId"`
	Worker  string `json:"worker"`
	// Rows carries one scenario.Result per spec of the group.
	Rows []scenario.Result `json:"rows"`
}

// CompleteResponse answers POST /v1/complete with StatusOK (rows merged) or
// StatusStale (the group was already completed elsewhere; the rows were
// redundant and dropped — first write wins).
type CompleteResponse struct {
	Status string `json:"status"`
	// Merged counts the rows this upload newly contributed (0 when stale).
	Merged int `json:"merged"`
}

// RenewRequest is the body of POST /v1/renew: a heartbeat extending a live
// lease.
type RenewRequest struct {
	LeaseID string `json:"leaseId"`
	Worker  string `json:"worker"`
}

// RenewResponse answers POST /v1/renew. StatusOK extends the lease by TTLMs;
// StatusStale tells the worker its lease was reassigned (it should abandon
// the group — any upload it still makes is merged first-write-wins, so
// racing a thief is harmless); StatusDone means the suite finished.
type RenewResponse struct {
	Status string `json:"status"`
	TTLMs  int64  `json:"ttlMs,omitempty"`
}

// StatusResponse is GET /v1/status (and the stats block of GET /healthz):
// coordinator occupancy for dashboards and smoke scripts.
type StatusResponse struct {
	// Groups counts partitioned spec groups; Pending/Leased/Done split
	// them by state.
	Groups  int `json:"groups"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Specs and Rows count suite cells and merged result rows (Rows
	// includes rows replayed from a resumed manifest).
	Specs int `json:"specs"`
	Rows  int `json:"rows"`
	// Replayed counts rows restored from the manifest at construction —
	// work a resumed coordinator did not recompute.
	Replayed int `json:"replayed"`
	// Steals counts expired-lease reassignments.
	Steals int `json:"steals"`
	// Complete is true once every group is done (or the suite aborted).
	Complete bool `json:"complete"`
}

// ErrorResponse is the JSON body of every non-2xx coordinator response.
type ErrorResponse struct {
	Error string `json:"error"`
}
