// Package shard distributes a scenario suite across machines: an HTTP
// coordinator partitions the suite's specs into session-sharing groups
// (scenario.GroupKey — the same unit the in-process runner batches for
// arena reuse) and leases them to shard workers, which execute each group
// through the ordinary resilient scenario.Runner and upload the result rows.
//
// The discipline mirrors the rest of the repository: every row is a
// deterministic function of its Spec, so a sharded suite — under any worker
// count, with workers killed mid-run, under chaos injection — merges to
// output that is order-normalised byte-identical to a single-process run.
// Leases carry deadlines; a worker that dies (or stalls past its TTL
// without renewing) simply loses its lease, and the next idle worker steals
// the group. Completions are first-write-wins per spec ID, journaled
// through a scenario.Manifest when configured, so a killed coordinator
// resumes from its journal without recomputation and a raced steal cannot
// duplicate rows.
//
// See README.md in this directory for the wire protocol and the failure
// matrix, and cmd/afshard for the daemonised coordinator/worker.
package shard

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"amnesiacflood/internal/chaos"
	"amnesiacflood/internal/obs"
	"amnesiacflood/internal/scenario"
)

// DefaultLeaseTTL bounds how long a worker may hold a group without
// completing or renewing it before the coordinator reassigns it.
const DefaultLeaseTTL = 30 * time.Second

// CoordinatorConfig parameterises a Coordinator. The zero value is usable.
type CoordinatorConfig struct {
	// LeaseTTL is the lease duration; expired leases are reassigned to the
	// next idle worker. Default DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Run is the execution policy pushed to every worker with each lease
	// (watchdog, retries, backoff, chaos injection), so the whole suite
	// runs under one worker-independent policy.
	Run RunConfig
	// Manifest, when non-nil, journals every merged row and replays its
	// journal at construction: specs with journaled rows are never leased,
	// so a restarted coordinator (or a fresh one over an old journal)
	// resumes instead of recomputing. The coordinator does not close it.
	Manifest *scenario.Manifest
	// Sink, when non-nil, receives every merged row exactly once, in
	// merge order (nondeterministic; order-normalise before comparing).
	// A sink error aborts the suite: Wait returns it and workers are told
	// StatusDone.
	Sink scenario.Sink
	// Logger receives lease-lifecycle events as structured records.
	// Default slog.Default(); use slog.New(slog.DiscardHandler) to
	// silence.
	Logger *slog.Logger
	// Metrics is the registry the coordinator records its afshard_*
	// families into and exposes on GET /metrics. Default: a fresh private
	// registry.
	Metrics *obs.Registry
}

// groupState is a shard group's lifecycle position.
type groupState uint8

const (
	statePending groupState = iota
	stateLeased
	stateDone
)

// shardGroup is one leaseable unit: every spec sharing a scenario.GroupKey.
type shardGroup struct {
	id    string
	specs []scenario.Spec
	ids   map[string]bool // spec IDs still missing a merged row
	state groupState
	// lease bookkeeping (stateLeased only)
	leaseID  string
	worker   string
	deadline time.Time
}

// Coordinator owns a suite's distribution state. Build one with
// NewCoordinator, mount Handler on an http.Server, and Wait for the merged
// results.
type Coordinator struct {
	cfg     CoordinatorConfig
	metrics *shardMetrics
	started time.Time

	mu        sync.Mutex
	groups    []*shardGroup
	byLease   map[string]*shardGroup
	seen      map[string]bool // merged spec IDs across all groups
	results   []scenario.Result
	remaining int // groups not yet done
	replayed  int
	steals    int
	leaseSeq  int
	sinkErr   error
	aborted   bool
	done      chan struct{}
}

// NewCoordinator partitions specs into lease groups and replays the
// configured manifest (journaled specs are merged immediately and never
// leased). Specs must already be registry-valid — the ones scenario.Matrix
// expansion produces are. The chaos spec of cfg.Run, when set, is validated
// here so a misconfigured suite fails before any worker does.
func NewCoordinator(specs []scenario.Spec, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one spec")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Run.Chaos != "" {
		if _, err := chaos.Parse(cfg.Run.Chaos); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}
	c := &Coordinator{
		cfg:     cfg,
		metrics: newShardMetrics(cfg.Metrics),
		started: time.Now(),
		byLease: map[string]*shardGroup{},
		seen:    map[string]bool{},
		done:    make(chan struct{}),
	}
	// Partition in first-seen order (the matrix expansion order), exactly
	// like the in-process runner, dropping specs the manifest already
	// journals — their rows merge now, without a worker.
	index := map[string]*shardGroup{}
	known := map[string]bool{}
	for _, s := range specs {
		id := s.ID()
		if known[id] {
			continue // duplicate spec in the suite; one row serves both
		}
		known[id] = true
		if cfg.Manifest != nil {
			if row, ok := cfg.Manifest.Row(id); ok {
				c.seen[id] = true
				c.replayed++
				c.results = append(c.results, row)
				if cfg.Sink != nil {
					if err := cfg.Sink.Write(row); err != nil {
						return nil, fmt.Errorf("shard: sink: %w", err)
					}
				}
				continue
			}
		}
		key := scenario.GroupKey(s)
		grp, ok := index[key]
		if !ok {
			grp = &shardGroup{id: fmt.Sprintf("g%03d", len(c.groups)), ids: map[string]bool{}}
			index[key] = grp
			c.groups = append(c.groups, grp)
		}
		grp.specs = append(grp.specs, s)
		grp.ids[id] = true
	}
	c.remaining = len(c.groups)
	c.metrics.replayed.Add(uint64(c.replayed))
	if c.remaining == 0 {
		close(c.done) // fully resumed from the manifest
	}
	return c, nil
}

// lease grants the next available group to worker, reclaiming expired
// leases first (work stealing). The returned response is ready for the
// wire.
func (c *Coordinator) lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.suiteOver() {
		return LeaseResponse{Status: StatusDone}
	}
	c.reclaimExpired()
	for _, grp := range c.groups {
		if grp.state != statePending {
			continue
		}
		c.leaseSeq++
		grp.state = stateLeased
		grp.leaseID = fmt.Sprintf("%s.l%d", grp.id, c.leaseSeq)
		grp.worker = worker
		grp.deadline = time.Now().Add(c.cfg.LeaseTTL)
		c.byLease[grp.leaseID] = grp
		c.metrics.granted.Inc()
		c.cfg.Logger.Info("shard: leased group", "group", grp.id, "specs", len(grp.specs), "worker", worker, "lease", grp.leaseID)
		return LeaseResponse{
			Status:  StatusLease,
			LeaseID: grp.leaseID,
			GroupID: grp.id,
			Specs:   grp.specs,
			TTLMs:   c.cfg.LeaseTTL.Milliseconds(),
			Config:  c.cfg.Run,
		}
	}
	// Everything remaining is leased out; poll again well inside the TTL
	// so an expiring lease is stolen promptly.
	retry := c.cfg.LeaseTTL / 4
	if retry > time.Second {
		retry = time.Second
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return LeaseResponse{Status: StatusWait, RetryMs: retry.Milliseconds()}
}

// reclaimExpired returns every expired lease to the pending pool. Called
// with c.mu held.
func (c *Coordinator) reclaimExpired() {
	now := time.Now()
	for _, grp := range c.groups {
		if grp.state == stateLeased && now.After(grp.deadline) {
			c.cfg.Logger.Warn("shard: lease expired; reassigning", "lease", grp.leaseID, "group", grp.id, "worker", grp.worker)
			c.metrics.expired.Inc()
			c.steals++
			c.unlease(grp)
		}
	}
}

// unlease resets a leased group to pending. Called with c.mu held.
func (c *Coordinator) unlease(grp *shardGroup) {
	delete(c.byLease, grp.leaseID)
	grp.state = statePending
	grp.leaseID, grp.worker = "", ""
	grp.deadline = time.Time{}
}

// renew extends a live lease by one TTL.
func (c *Coordinator) renew(leaseID string) RenewResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.suiteOver() {
		return RenewResponse{Status: StatusDone}
	}
	grp, ok := c.byLease[leaseID]
	if !ok || grp.state != stateLeased || grp.leaseID != leaseID || time.Now().After(grp.deadline) {
		return RenewResponse{Status: StatusStale}
	}
	grp.deadline = time.Now().Add(c.cfg.LeaseTTL)
	c.metrics.renewed.Inc()
	return RenewResponse{Status: StatusOK, TTLMs: c.cfg.LeaseTTL.Milliseconds()}
}

// complete merges one uploaded group. Rows are accepted from stale leases
// too — a worker that lost its lease but finished anyway raced the thief,
// and first-write-wins makes the race harmless — but only rows for specs of
// the named group that are still missing are merged. The group is marked
// done once every spec has a row; an upload that leaves specs uncovered
// (a worker that somehow lost rows) returns the group to pending.
func (c *Coordinator) complete(req *CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var grp *shardGroup
	for _, g := range c.groups {
		if g.id == req.GroupID {
			grp = g
			break
		}
	}
	if grp == nil {
		return CompleteResponse{}, fmt.Errorf("unknown group %q", req.GroupID)
	}
	if grp.state == stateDone || c.aborted {
		return CompleteResponse{Status: StatusStale}, nil
	}
	stale := grp.state != stateLeased || grp.leaseID != req.LeaseID
	merged := 0
	for i := range req.Rows {
		row := req.Rows[i]
		id := row.Spec.ID()
		if !grp.ids[id] || c.seen[id] {
			continue // not this group's spec, or already merged
		}
		if err := c.mergeLocked(row); err != nil {
			// A sink failure aborts the suite; rows merged before it are
			// kept (the manifest journaled them first).
			c.abortLocked(err)
			return CompleteResponse{}, err
		}
		c.seen[id] = true
		merged++
		c.metrics.rowsMerged.Inc()
		c.metrics.attempts.Add(uint64(max(row.Attempts, 0)))
	}
	covered := true
	for id := range grp.ids {
		if !c.seen[id] {
			covered = false
			break
		}
	}
	if covered {
		if grp.state == stateLeased {
			c.unlease(grp)
		}
		grp.state = stateDone
		c.remaining--
		c.cfg.Logger.Info("shard: group done", "group", grp.id, "merged", merged, "worker", req.Worker, "stale", stale, "remaining", c.remaining)
		if c.remaining == 0 {
			close(c.done)
		}
	} else if grp.state == stateLeased && grp.leaseID == req.LeaseID {
		// The lease's own upload did not cover the group: requeue the
		// remainder rather than waiting for the TTL.
		c.unlease(grp)
	}
	status := StatusOK
	if stale && merged == 0 {
		status = StatusStale
	}
	c.metrics.completions.With(status).Inc()
	return CompleteResponse{Status: status, Merged: merged}, nil
}

// mergeLocked journals and sinks one new row. Called with c.mu held and the
// row already dedup-checked.
func (c *Coordinator) mergeLocked(row scenario.Result) error {
	if c.cfg.Manifest != nil {
		if err := c.cfg.Manifest.Write(row); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
	}
	if c.cfg.Sink != nil {
		if err := c.cfg.Sink.Write(row); err != nil {
			return fmt.Errorf("sink: %w", err)
		}
	}
	c.results = append(c.results, row)
	return nil
}

// abortLocked marks the suite failed: Wait returns err and every later
// lease/renew answers StatusDone so workers exit. Called with c.mu held.
func (c *Coordinator) abortLocked(err error) {
	if c.aborted {
		return
	}
	c.aborted = true
	c.sinkErr = err
	c.cfg.Logger.Error("shard: aborting suite", "err", err)
	if c.remaining > 0 {
		close(c.done)
	}
}

// suiteOver reports completion or abort. Called with c.mu held.
func (c *Coordinator) suiteOver() bool {
	return c.remaining == 0 || c.aborted
}

// Done returns a channel closed when every group is merged (or the suite
// aborted).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the suite completes, returning every merged row sorted
// by Spec ID — the order-normalised form, byte-identical (up to
// WallMicros/Attempts) to a single-process scenario run of the same specs.
// On abort it returns the rows merged so far and the aborting error; on ctx
// expiry, ctx's error.
func (c *Coordinator) Wait(ctx context.Context) ([]scenario.Result, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		c.mu.Lock()
		defer c.mu.Unlock()
		out := append([]scenario.Result(nil), c.results...)
		scenario.SortResults(out)
		return out, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]scenario.Result(nil), c.results...)
	scenario.SortResults(out)
	return out, c.sinkErr
}

// Status snapshots the coordinator's occupancy.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{
		Groups:   len(c.groups),
		Rows:     len(c.results),
		Replayed: c.replayed,
		Steals:   c.steals,
		Complete: c.suiteOver(),
	}
	for _, grp := range c.groups {
		st.Specs += len(grp.specs)
		switch grp.state {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		case stateDone:
			st.Done++
		}
	}
	st.Specs += c.replayed
	return st
}
