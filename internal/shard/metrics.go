package shard

import (
	"io"
	"net/http"
	"time"

	"amnesiacflood/internal/obs"
)

// This file is the shard layer's telemetry: the afshard_* families the
// coordinator exposes on GET /metrics, and the worker-side counters. As
// everywhere in this repository, recording sits strictly on the observing
// side of decisions — lease grants, merges, and steals consult no metric —
// so the merged suite stays byte-identical with or without a scraper
// attached.
//
// Coordinator families (see README.md for the contract):
//
//	afshard_leases_granted_total        leases handed to workers
//	afshard_leases_renewed_total        successful heartbeat renewals
//	afshard_leases_expired_total        TTL expiries (= steals: the next
//	                                    idle worker re-leases the group)
//	afshard_completions_total{status}   uploads, by merge status (ok/stale)
//	afshard_rows_merged_total           first-write-wins merged rows
//	afshard_rows_replayed_total         rows resumed from the manifest
//	afshard_run_attempts_total          attempts consumed by merged rows
//	afshard_upload_bytes_total          wire bytes of /v1/complete bodies
//	afshard_groups_{pending,leased,done} and afshard_uptime_seconds are
//	gauges sampled at scrape time.
//
// Workers given a registry additionally record afshard_worker_* counters
// and the scenario_* families of their lease runner (scenario.Telemetry).
type shardMetrics struct {
	reg *obs.Registry

	granted     *obs.Counter
	renewed     *obs.Counter
	expired     *obs.Counter
	completions *obs.CounterVec
	rowsMerged  *obs.Counter
	replayed    *obs.Counter
	attempts    *obs.Counter
	uploadBytes *obs.Counter

	pending *obs.Gauge
	leased  *obs.Gauge
	done    *obs.Gauge
	uptime  *obs.Gauge
}

// newShardMetrics registers the coordinator families on reg (idempotent).
func newShardMetrics(reg *obs.Registry) *shardMetrics {
	return &shardMetrics{
		reg:         reg,
		granted:     reg.Counter("afshard_leases_granted_total", "Group leases granted to workers."),
		renewed:     reg.Counter("afshard_leases_renewed_total", "Lease heartbeats accepted."),
		expired:     reg.Counter("afshard_leases_expired_total", "Leases expired past their TTL and returned for stealing."),
		completions: reg.CounterVec("afshard_completions_total", "Group uploads processed, by merge status.", "status"),
		rowsMerged:  reg.Counter("afshard_rows_merged_total", "Result rows merged first-write-wins."),
		replayed:    reg.Counter("afshard_rows_replayed_total", "Rows resumed from the manifest journal without a worker."),
		attempts:    reg.Counter("afshard_run_attempts_total", "Run attempts consumed by merged rows (sum of row attempts)."),
		uploadBytes: reg.Counter("afshard_upload_bytes_total", "Wire bytes received on /v1/complete, before decompression."),
		pending:     reg.Gauge("afshard_groups_pending", "Groups awaiting a lease (set at scrape)."),
		leased:      reg.Gauge("afshard_groups_leased", "Groups leased out right now (set at scrape)."),
		done:        reg.Gauge("afshard_groups_done", "Groups fully merged (set at scrape)."),
		uptime:      reg.Gauge("afshard_uptime_seconds", "Whole seconds since the coordinator was built (set at scrape)."),
	}
}

// countingReader counts wire bytes into a counter as they are read.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// coordinator registry, with occupancy gauges sampled at scrape time.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.Status()
	c.metrics.pending.Set(int64(st.Pending))
	c.metrics.leased.Set(int64(st.Leased))
	c.metrics.done.Set(int64(st.Done))
	c.metrics.uptime.Set(int64(time.Since(c.started) / time.Second))
	obs.Handler(c.metrics.reg).ServeHTTP(w, r)
}
