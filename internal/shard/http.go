package shard

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"amnesiacflood/internal/obs"
)

// This file is the coordinator's HTTP surface. The endpoints are a pull
// protocol — workers poll for leases, so the coordinator needs no worker
// registry, no push channel, and no reachable workers: a worker that
// vanishes simply stops polling and its lease expires.
//
//	POST /v1/lease     {worker}                 -> LeaseResponse
//	POST /v1/complete  {leaseId, groupId, rows} -> CompleteResponse (body may be gzip)
//	POST /v1/renew     {leaseId}                -> RenewResponse
//	GET  /v1/status                             -> StatusResponse
//	GET  /healthz                               -> {"status":"ok"|"complete", "stats":...}

// maxBodyBytes bounds request bodies (after decompression): 64 MiB of rows
// is far beyond any group a sane matrix produces.
const maxBodyBytes = 64 << 20

// Handler returns the coordinator's route table.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// decodeBody decodes a JSON body, transparently gunzipping when the request
// declares Content-Encoding: gzip (the worker always compresses result
// uploads).
func decodeBody(r *http.Request, v any) error {
	var src io.Reader = http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(src)
		if err != nil {
			return fmt.Errorf("gzip body: %w", err)
		}
		defer zr.Close()
		src = io.LimitReader(zr, maxBodyBytes)
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeJSON shapes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError shapes one failure.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// handleLease is POST /v1/lease.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Worker == "" {
		req.Worker = r.RemoteAddr
	}
	writeJSON(w, http.StatusOK, c.lease(req.Worker))
}

// handleComplete is POST /v1/complete. Wire bytes (pre-decompression) feed
// the upload-bytes counter through a counting reader, so the metric reflects
// what actually crossed the network, not the inflated JSON.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	r.Body = struct {
		io.Reader
		io.Closer
	}{&countingReader{r: r.Body, c: c.metrics.uploadBytes}, r.Body}
	var req CompleteRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := c.complete(&req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRenew is POST /v1/renew.
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, c.renew(req.LeaseID))
}

// handleStatus is GET /v1/status.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// healthResponse is GET /healthz.
type healthResponse struct {
	Status string `json:"status"`
	// UptimeSeconds is whole seconds since the coordinator was built.
	UptimeSeconds int64 `json:"uptimeSeconds"`
	// Version is the main module's build version ("unknown" for plain
	// source builds without module metadata).
	Version string         `json:"version"`
	Stats   StatusResponse `json:"stats"`
}

// handleHealthz is GET /healthz: "ok" while distributing, "complete" once
// the suite is merged (or aborted) — the signal shard workers and smoke
// scripts key off.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := c.Status()
	status := "ok"
	if st.Complete {
		status = "complete"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        status,
		UptimeSeconds: int64(time.Since(c.started) / time.Second),
		Version:       obs.Version(),
		Stats:         st,
	})
}
