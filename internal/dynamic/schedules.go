package dynamic

import (
	"fmt"

	"amnesiacflood/internal/graph"
)

// Static keeps every edge alive forever: the dynamic runner must match the
// synchronous engine exactly under it.
type Static struct{}

var _ Schedule = Static{}

// Name implements Schedule.
func (Static) Name() string { return "static" }

// Alive implements Schedule.
func (Static) Alive(int, graph.Edge) bool { return true }

// Period implements Schedule: static behaviour has period 1.
func (Static) Period() int { return 1 }

// OutageOnce takes one edge down for exactly one round — the minimal
// dynamic fault, equivalent to losing the messages crossing that edge in
// that round.
type OutageOnce struct {
	Round int
	Edge  graph.Edge
}

var _ Schedule = OutageOnce{}

// Name implements Schedule.
func (o OutageOnce) Name() string {
	return fmt.Sprintf("outage(r%d,%s)", o.Round, o.Edge.Normalize())
}

// Alive implements Schedule.
func (o OutageOnce) Alive(round int, e graph.Edge) bool {
	return !(round == o.Round && e == o.Edge.Normalize())
}

// Period implements Schedule: after the outage round the schedule is
// static (period 1). SettledAfter tells the runner to start recording
// configurations only once the transient has passed, so pre-outage
// configurations can never alias post-outage ones.
func (o OutageOnce) Period() int { return 1 }

// SettledAfter reports the last round with transient behaviour.
func (o OutageOnce) SettledAfter() int { return o.Round }

// Blinking keeps one edge alive only every k-th round (round % K == Phase),
// all other edges always alive. With K = 2 this models a link that flaps at
// half the round rate.
type Blinking struct {
	Edge  graph.Edge
	K     int
	Phase int
}

var _ Schedule = Blinking{}

// Name implements Schedule.
func (b Blinking) Name() string {
	return fmt.Sprintf("blinking(%s,k=%d)", b.Edge.Normalize(), b.K)
}

// Alive implements Schedule.
func (b Blinking) Alive(round int, e graph.Edge) bool {
	if e != b.Edge.Normalize() {
		return true
	}
	return round%b.K == b.Phase%b.K
}

// Period implements Schedule.
func (b Blinking) Period() int { return b.K }

// Alternating splits the edge set in two halves that are alive in
// alternating rounds: even rounds use edges with U+V even, odd rounds the
// rest. An aggressive periodic churn keeping only half the graph up at any
// time.
type Alternating struct{}

var _ Schedule = Alternating{}

// Name implements Schedule.
func (Alternating) Name() string { return "alternating-halves" }

// Alive implements Schedule.
func (Alternating) Alive(round int, e graph.Edge) bool {
	return (int(e.U+e.V)+round)%2 == 0
}

// Period implements Schedule.
func (Alternating) Period() int { return 2 }
