// Package dynamic defines the edge schedules of the dynamic-network
// amnesiac flooding model: the edge set of a base graph may change between
// rounds, and messages sent onto dead edges are lost. The paper's open
// questions ask how the process behaves beyond static synchronous graphs;
// these schedules give the question an executable form, complementing the
// asynchronous (internal/async) and faulty (internal/faults) variants.
//
// The schedules implement model.Schedule and self-register in the
// model-spec registry from this package's init, so importing the package is
// all it takes to make them addressable as execution-model specs
// ("schedule:static", "schedule:blink:period=2,phase=1", ...) through
// sim.WithModel, scenario matrices, and the CLIs. The model itself —
// delivery, loss accounting, (configuration, phase) certificates — is
// executed by model.DynamicEngine; this package holds only the liveness
// policies.
//
// Findings (experiment E14): a static schedule reproduces the synchronous
// engine exactly; a single edge outage in the right round is equivalent to
// a lost message and can leave a wavefront circulating forever; periodically
// blinking edges can sustain the flood on graphs where every static
// subgraph would terminate.
package dynamic

import (
	"fmt"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// Static keeps every edge alive forever: the dynamic engine must match the
// synchronous engines exactly under it (verified by fuzz tests).
type Static struct{}

var _ model.Schedule = Static{}

// Name implements model.Schedule.
func (Static) Name() string { return "static" }

// Alive implements model.Schedule.
func (Static) Alive(int, graph.Edge) bool { return true }

// Period implements model.Schedule: static behaviour has period 1.
func (Static) Period() int { return 1 }

// OutageOnce takes one edge down for exactly one round — the minimal
// dynamic fault, equivalent to losing the messages crossing that edge in
// that round.
type OutageOnce struct {
	Round int
	Edge  graph.Edge
}

var _ model.Schedule = OutageOnce{}
var _ model.Settler = OutageOnce{}

// Name implements model.Schedule.
func (o OutageOnce) Name() string {
	return fmt.Sprintf("outage(r%d,%s)", o.Round, o.Edge.Normalize())
}

// Alive implements model.Schedule.
func (o OutageOnce) Alive(round int, e graph.Edge) bool {
	return !(round == o.Round && e == o.Edge.Normalize())
}

// Period implements model.Schedule: after the outage round the schedule is
// static (period 1). SettledAfter tells the engine to start recording
// configurations only once the transient has passed, so pre-outage
// configurations can never alias post-outage ones.
func (o OutageOnce) Period() int { return 1 }

// SettledAfter implements model.Settler: the outage round is the last
// transient round.
func (o OutageOnce) SettledAfter() int { return o.Round }

// Blinking keeps one edge alive only every k-th round (round % K == Phase),
// all other edges always alive. With K = 2 this models a link that flaps at
// half the round rate.
type Blinking struct {
	Edge  graph.Edge
	K     int
	Phase int
}

var _ model.Schedule = Blinking{}

// Name implements model.Schedule.
func (b Blinking) Name() string {
	return fmt.Sprintf("blinking(%s,k=%d)", b.Edge.Normalize(), b.K)
}

// Alive implements model.Schedule.
func (b Blinking) Alive(round int, e graph.Edge) bool {
	if e != b.Edge.Normalize() {
		return true
	}
	return round%b.K == b.Phase%b.K
}

// Period implements model.Schedule.
func (b Blinking) Period() int { return b.K }

// Alternating splits the edge set in two halves that are alive in
// alternating rounds: even rounds use edges with U+V even, odd rounds the
// rest. An aggressive periodic churn keeping only half the graph up at any
// time.
type Alternating struct{}

var _ model.Schedule = Alternating{}

// Name implements model.Schedule.
func (Alternating) Name() string { return "alternating-halves" }

// Alive implements model.Schedule.
func (Alternating) Alive(round int, e graph.Edge) bool {
	return (int(e.U+e.V)+round)%2 == 0
}

// Period implements model.Schedule.
func (Alternating) Period() int { return 2 }
