package dynamic_test

import (
	"testing"

	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// Engine-level behaviour of these schedules (termination, certificates,
// equivalence with the synchronous engines) is covered by the differential
// and fuzz tests in internal/model; this file unit-tests the liveness
// policies themselves.

func TestScheduleNames(t *testing.T) {
	cases := []struct {
		sched model.Schedule
		want  string
	}{
		{dynamic.Static{}, "static"},
		{dynamic.OutageOnce{Round: 2, Edge: graph.Edge{U: 3, V: 1}}, "outage(r2,(1,3))"},
		{dynamic.Blinking{Edge: graph.Edge{U: 0, V: 1}, K: 2}, "blinking((0,1),k=2)"},
		{dynamic.Alternating{}, "alternating-halves"},
	}
	for _, tc := range cases {
		if got := tc.sched.Name(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

func TestOutageOnceLiveness(t *testing.T) {
	o := dynamic.OutageOnce{Round: 2, Edge: graph.Edge{U: 3, V: 1}}
	e := graph.Edge{U: 1, V: 3}
	if o.Alive(2, e) {
		t.Error("edge alive in its outage round")
	}
	if !o.Alive(1, e) || !o.Alive(3, e) {
		t.Error("edge dead outside its outage round")
	}
	if !o.Alive(2, graph.Edge{U: 0, V: 1}) {
		t.Error("outage leaked onto another edge")
	}
	if o.Period() != 1 || o.SettledAfter() != 2 {
		t.Errorf("period/settled = %d/%d, want 1/2", o.Period(), o.SettledAfter())
	}
}

func TestBlinkingLiveness(t *testing.T) {
	b := dynamic.Blinking{Edge: graph.Edge{U: 1, V: 2}, K: 3, Phase: 1}
	e := graph.Edge{U: 1, V: 2}
	for round := 1; round <= 9; round++ {
		want := round%3 == 1
		if b.Alive(round, e) != want {
			t.Errorf("round %d: alive = %t, want %t", round, b.Alive(round, e), want)
		}
		if !b.Alive(round, graph.Edge{U: 0, V: 1}) {
			t.Errorf("round %d: other edges must stay up", round)
		}
	}
	if b.Period() != 3 {
		t.Errorf("period = %d, want 3", b.Period())
	}
}

func TestAlternatingLiveness(t *testing.T) {
	a := dynamic.Alternating{}
	if a.Period() != 2 {
		t.Errorf("period = %d, want 2", a.Period())
	}
	// Every edge flips between consecutive rounds.
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 4}} {
		if a.Alive(1, e) == a.Alive(2, e) {
			t.Errorf("edge %v does not alternate", e)
		}
		if a.Alive(1, e) != a.Alive(3, e) {
			t.Errorf("edge %v is not 2-periodic", e)
		}
	}
}

func TestStaticLiveness(t *testing.T) {
	s := dynamic.Static{}
	if !s.Alive(1, graph.Edge{U: 0, V: 1}) || s.Period() != 1 {
		t.Error("static schedule must keep everything alive with period 1")
	}
}
