package dynamic

import (
	"fmt"

	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/model"
)

// The schedule families of the model-spec registry. Parameter order here is
// the canonical spec order (model.Spec.String emits it), so these
// declarations are the grammar of "schedule:..." specs.
func init() {
	model.RegisterSchedule("static", model.ScheduleFamily{
		Doc: "every edge alive forever; coincides with the synchronous model",
		New: func(model.Values, int64) (model.Schedule, error) { return Static{}, nil },
	})
	model.RegisterSchedule("outage", model.ScheduleFamily{
		Params: []model.Param{
			{Name: "round", Kind: model.IntParam, Default: "1", Doc: "the round the edge is down"},
			{Name: "u", Kind: model.IntParam, Default: "0", Doc: "one endpoint of the edge"},
			{Name: "v", Kind: model.IntParam, Default: "1", Doc: "the other endpoint"},
		},
		Doc: "one edge down for exactly one round — the minimal dynamic fault",
		New: func(v model.Values, _ int64) (model.Schedule, error) {
			if v.Int("round") < 1 {
				return nil, fmt.Errorf("round must be >= 1, got %d", v.Int("round"))
			}
			return OutageOnce{Round: v.Int("round"), Edge: graph.Edge{U: graph.NodeID(v.Int("u")), V: graph.NodeID(v.Int("v"))}}, nil
		},
	})
	model.RegisterSchedule("blink", model.ScheduleFamily{
		Params: []model.Param{
			{Name: "u", Kind: model.IntParam, Default: "0", Doc: "one endpoint of the blinking edge"},
			{Name: "v", Kind: model.IntParam, Default: "1", Doc: "the other endpoint"},
			{Name: "period", Kind: model.IntParam, Default: "2", Doc: "the edge is alive every period-th round"},
			{Name: "phase", Kind: model.IntParam, Default: "0", Doc: "alive when round % period == phase"},
		},
		Doc: "one edge alive only every period-th round, all others always up",
		New: func(v model.Values, _ int64) (model.Schedule, error) {
			if v.Int("period") < 1 {
				return nil, fmt.Errorf("period must be >= 1, got %d", v.Int("period"))
			}
			// A negative phase can never equal round % period (>= 0), which
			// would leave the edge permanently dead instead of blinking.
			if p := v.Int("phase"); p < 0 || p >= v.Int("period") {
				return nil, fmt.Errorf("phase must be in [0, period), got %d", p)
			}
			return Blinking{Edge: graph.Edge{U: graph.NodeID(v.Int("u")), V: graph.NodeID(v.Int("v"))}, K: v.Int("period"), Phase: v.Int("phase")}, nil
		},
	})
	model.RegisterSchedule("alternating", model.ScheduleFamily{
		Doc: "parity halves of the edge set alive in alternating rounds",
		New: func(model.Values, int64) (model.Schedule, error) { return Alternating{}, nil },
	})
}
