package dynamic_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"amnesiacflood/internal/core"
	"amnesiacflood/internal/dynamic"
	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
	"amnesiacflood/internal/graph/gen"
)

func TestValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := dynamic.Run(g, dynamic.Static{}, dynamic.Options{}); err == nil {
		t.Fatal("no origins accepted")
	}
	if _, err := dynamic.Run(g, dynamic.Static{}, dynamic.Options{}, 42); err == nil {
		t.Fatal("bad origin accepted")
	}
}

func TestStaticMatchesEngine(t *testing.T) {
	// Property: the dynamic runner under Static{} equals the synchronous
	// engine trace for trace.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomConnected(2+rng.Intn(40), 0.1, rng)
		src := graph.NodeID(rng.Intn(g.N()))
		dres, err := dynamic.Run(g, dynamic.Static{}, dynamic.Options{Trace: true}, src)
		if err != nil || dres.Outcome != dynamic.Terminated {
			return false
		}
		flood, err := core.NewFlood(g, src)
		if err != nil {
			return false
		}
		sres, err := engine.Run(context.Background(), g, flood, engine.Options{Trace: true})
		if err != nil {
			return false
		}
		return engine.EqualTraces(dres.Trace, sres.Trace) &&
			dres.Delivered == sres.TotalMessages && dres.Lost == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOutageOnEvenCycleBreaksTermination(t *testing.T) {
	// Taking edge {0,3} of C4 down in round 1 loses the copy 0->3 and
	// leaves a circulating wavefront — same as the message-loss finding,
	// now caused by topology churn.
	g := gen.Cycle(4)
	sched := dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 3}}
	res, err := dynamic.Run(g, sched, dynamic.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dynamic.CycleDetected {
		t.Fatalf("outcome = %v, want CycleDetected", res.Outcome)
	}
	if res.Lost != 1 {
		t.Fatalf("lost = %d, want 1", res.Lost)
	}
	if res.CycleLength != 4 {
		t.Fatalf("period = %d, want 4 (one lap)", res.CycleLength)
	}
}

func TestOutageOnTreeOnlyShrinks(t *testing.T) {
	g := gen.CompleteBinaryTree(4)
	sched := dynamic.OutageOnce{Round: 1, Edge: graph.Edge{U: 0, V: 1}}
	res, err := dynamic.Run(g, sched, dynamic.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dynamic.Terminated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// The whole left subtree (rooted at 1) is cut off: 7 of 15 nodes.
	if res.CoverageCount() != 8 {
		t.Fatalf("coverage = %d, want 8", res.CoverageCount())
	}
}

func TestBlinkingEdge(t *testing.T) {
	// A path whose middle edge is up only every other round: the flood
	// must still cross (messages retry from re-received copies? no — a
	// lost copy is lost; the flood dies at the blinking edge when the
	// wave hits a down phase).
	g := gen.Path(4)
	up := dynamic.Blinking{Edge: graph.Edge{U: 1, V: 2}, K: 2, Phase: 0}
	res, err := dynamic.Run(g, up, dynamic.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wave reaches edge {1,2} in round 2; phase 0 means alive in even
	// rounds, so it crosses and the flood completes.
	if res.Outcome != dynamic.Terminated || res.CoverageCount() != 4 {
		t.Fatalf("aligned blinking: %+v", res)
	}
	down := dynamic.Blinking{Edge: graph.Edge{U: 1, V: 2}, K: 2, Phase: 1}
	res2, err := dynamic.Run(g, down, dynamic.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != dynamic.Terminated || res2.CoverageCount() != 2 {
		t.Fatalf("misaligned blinking: %+v", res2)
	}
}

func TestAlternatingHalvesEndsDeterministically(t *testing.T) {
	// The aggressive churn schedule must either terminate or produce a
	// certificate — never hit the round limit, since it is periodic.
	for _, g := range []*graph.Graph{gen.Cycle(6), gen.Cycle(7), gen.Grid(4, 4), gen.Complete(6)} {
		res, err := dynamic.Run(g, dynamic.Alternating{}, dynamic.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == dynamic.RoundLimit {
			t.Fatalf("%s: periodic schedule hit the round limit", g)
		}
		t.Logf("%s under alternating halves: %v after %d rounds (coverage %d/%d)",
			g, res.Outcome, res.Rounds, res.CoverageCount(), g.N())
	}
}

func TestRunDeterministic(t *testing.T) {
	g := gen.Grid(5, 5)
	sched := dynamic.Blinking{Edge: graph.Edge{U: 0, V: 1}, K: 3}
	a, err := dynamic.Run(g, sched, dynamic.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dynamic.Run(g, sched, dynamic.Options{Trace: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.Rounds != b.Rounds || !engine.EqualTraces(a.Trace, b.Trace) {
		t.Fatal("two identical dynamic runs differ")
	}
}

func TestScheduleNames(t *testing.T) {
	cases := []struct {
		sched dynamic.Schedule
		want  string
	}{
		{dynamic.Static{}, "static"},
		{dynamic.OutageOnce{Round: 2, Edge: graph.Edge{U: 3, V: 1}}, "outage(r2,(1,3))"},
		{dynamic.Blinking{Edge: graph.Edge{U: 0, V: 1}, K: 2}, "blinking((0,1),k=2)"},
		{dynamic.Alternating{}, "alternating-halves"},
	}
	for _, tc := range cases {
		if got := tc.sched.Name(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if dynamic.Terminated.String() != "terminated" ||
		dynamic.CycleDetected.String() != "non-termination-certified" ||
		dynamic.RoundLimit.String() != "round-limit" {
		t.Fatal("outcome strings wrong")
	}
}

func TestMultiOriginDynamic(t *testing.T) {
	g := gen.Cycle(10)
	res, err := dynamic.Run(g, dynamic.Static{}, dynamic.Options{}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dynamic.Terminated || res.CoverageCount() != 10 {
		t.Fatalf("multi-origin dynamic run = %+v", res)
	}
}
