// Package dynamic runs amnesiac flooding over dynamic networks: the edge
// set may change between rounds. The paper's open questions ask how the
// process behaves beyond static synchronous graphs; this package gives the
// question an executable form, complementing the asynchronous (internal/
// async) and faulty (internal/faults) variants.
//
// # Model
//
// A Schedule decides which edges of a base graph are alive in each round.
// Messages sent in round r cross only edges alive in round r; a message
// whose edge is down is lost (the natural reading of "the link is gone" —
// lossless buffering would be the asynchronous model instead). Nodes apply
// the usual amnesiac rule over their *base* neighbourhood: forward to every
// base neighbour not among this round's senders. Sends onto dead edges are
// dropped in transit.
//
// # Findings (experiment E14)
//
// A static schedule reproduces the synchronous engine exactly. A single
// edge outage in the right round is equivalent to a lost message and can
// leave a wavefront circulating forever (certified, as everywhere else in
// this repository, by configuration repetition — for periodic schedules the
// configuration is extended with the schedule phase). Periodically blinking
// edges can sustain the flood on graphs where every static subgraph would
// terminate.
package dynamic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"amnesiacflood/internal/engine"
	"amnesiacflood/internal/graph"
)

// Schedule decides edge liveness per round.
type Schedule interface {
	// Name identifies the schedule in reports.
	Name() string
	// Alive reports whether the undirected edge {u, v} carries messages
	// in the given round.
	Alive(round int, e graph.Edge) bool
	// Period returns p > 0 when Alive depends on the round only through
	// round mod p (a static schedule has period 1). It returns 0 when the
	// schedule is aperiodic; certificates are then disabled.
	Period() int
}

// Outcome classifies a dynamic run.
type Outcome int

// Possible outcomes.
const (
	// Terminated: a round with no in-flight messages arrived.
	Terminated Outcome = iota + 1
	// CycleDetected: the (configuration, schedule phase) pair repeated —
	// the execution is periodic and never terminates.
	CycleDetected
	// RoundLimit: the round limit was reached (aperiodic schedules only).
	RoundLimit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case CycleDetected:
		return "non-termination-certified"
	case RoundLimit:
		return "round-limit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result summarises a dynamic run.
type Result struct {
	Outcome   Outcome
	Schedule  string
	Rounds    int
	Delivered int
	Lost      int // messages sent onto dead edges
	Covered   []bool
	// CycleStart / CycleLength describe the certified loop.
	CycleStart, CycleLength int
	Trace                   []engine.RoundRecord
}

// CoverageCount returns how many nodes hold or have held M.
func (r Result) CoverageCount() int {
	n := 0
	for _, c := range r.Covered {
		if c {
			n++
		}
	}
	return n
}

// Options configures a dynamic run.
type Options struct {
	Trace     bool
	MaxRounds int // 0 means DefaultMaxRounds
}

// DefaultMaxRounds bounds dynamic runs.
const DefaultMaxRounds = 1 << 16

// Run floods g from the origins under the schedule.
func Run(g *graph.Graph, sched Schedule, opts Options, origins ...graph.NodeID) (Result, error) {
	if len(origins) == 0 {
		return Result{}, fmt.Errorf("dynamic: need at least one origin on %s", g)
	}
	for _, o := range origins {
		if !g.HasNode(o) {
			return Result{}, fmt.Errorf("dynamic: origin %d is not a node of %s", o, g)
		}
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	res := Result{Schedule: sched.Name(), Covered: make([]bool, g.N())}

	var pending []engine.Send
	for _, o := range origins {
		res.Covered[o] = true
		for _, nbr := range g.Neighbors(o) {
			pending = append(pending, engine.Send{From: o, To: nbr})
		}
	}
	pending = dedup(pending)

	period := sched.Period()
	settled := settledAfter(sched)
	seen := map[string]int{}
	for round := 1; len(pending) > 0; round++ {
		if round > maxRounds {
			res.Outcome = RoundLimit
			res.Rounds = maxRounds
			return res, nil
		}
		if period > 0 && round > settled {
			key := strconv.Itoa(round%period) + "|" + sendsKey(pending)
			if first, ok := seen[key]; ok {
				res.Outcome = CycleDetected
				res.CycleStart = first
				res.CycleLength = round - first
				res.Rounds = round
				return res, nil
			}
			seen[key] = round
		}
		res.Rounds = round

		var delivered []engine.Send
		for _, s := range pending {
			if sched.Alive(round, graph.Edge{U: s.From, V: s.To}.Normalize()) {
				delivered = append(delivered, s)
			} else {
				res.Lost++
			}
		}
		res.Delivered += len(delivered)
		if opts.Trace {
			res.Trace = append(res.Trace, engine.RoundRecord{
				Round: round,
				Sends: append([]engine.Send(nil), delivered...),
			})
		}

		byTo := map[graph.NodeID][]graph.NodeID{}
		for _, s := range delivered {
			res.Covered[s.To] = true
			byTo[s.To] = append(byTo[s.To], s.From)
		}
		receivers := make([]graph.NodeID, 0, len(byTo))
		for v := range byTo {
			receivers = append(receivers, v)
		}
		sort.Slice(receivers, func(i, j int) bool { return receivers[i] < receivers[j] })
		var next []engine.Send
		for _, v := range receivers {
			senders := byTo[v]
			sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
			i := 0
			for _, nbr := range g.Neighbors(v) {
				for i < len(senders) && senders[i] < nbr {
					i++
				}
				if i < len(senders) && senders[i] == nbr {
					continue
				}
				next = append(next, engine.Send{From: v, To: nbr})
			}
		}
		pending = dedup(next)
	}
	res.Outcome = Terminated
	return res, nil
}

// settledAfter returns the round after which a schedule's declared period
// actually holds (0 for always-periodic schedules). Schedules with a
// transient (OutageOnce) advertise it via the optional interface.
func settledAfter(sched Schedule) int {
	type settler interface{ SettledAfter() int }
	if s, ok := sched.(settler); ok {
		return s.SettledAfter()
	}
	return 0
}

func dedup(sends []engine.Send) []engine.Send {
	if len(sends) == 0 {
		return nil
	}
	sort.Slice(sends, func(i, j int) bool {
		if sends[i].From != sends[j].From {
			return sends[i].From < sends[j].From
		}
		return sends[i].To < sends[j].To
	})
	out := sends[:1]
	for _, s := range sends[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func sendsKey(sends []engine.Send) string {
	parts := make([]string, len(sends))
	for i, s := range sends {
		parts[i] = strconv.Itoa(int(s.From)) + ">" + strconv.Itoa(int(s.To))
	}
	return strings.Join(parts, ",")
}
