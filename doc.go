// Package amnesiacflood is a from-scratch Go reproduction of
//
//	Walter Hussak and Amitabh Trehan.
//	"Brief Announcement: On Termination of a Flooding Process." PODC 2019.
//
// Amnesiac Flooding (AF) is flooding without memory: a distinguished node
// sends a message M to all its neighbours in round 1, and in every later
// round each node that received M forwards it to exactly those neighbours it
// did not receive it from — remembering nothing between rounds. The paper
// proves AF nevertheless terminates on every finite graph: in exactly
// e(source) rounds on connected bipartite graphs (a parallel BFS) and within
// 2D+1 rounds in general, while a natural asynchronous variant can be kept
// alive forever by a scheduling adversary.
//
// The repository reproduces every evaluation artifact of the paper (Figures
// 1-5 and Theorems 3.1/3.3, see DESIGN.md and EXPERIMENTS.md) on five
// interchangeable synchronous substrates — a deterministic sequential
// reference engine, a goroutine-per-node channel engine, a zero-allocation
// compressed-sparse-row engine with an optional parallel sharded-delivery
// mode, and a word-parallel bitset frontier engine that executes set-rule
// protocols (amnesiac, classic) as OR/AND-NOT sweeps over packed directed
// edge slots, with push/pull kernels chosen per round by frontier density
// and an optional word-sharded mode — plus asynchronous and dynamic-network model
// engines with pluggable adversaries/schedules and configuration-cycle
// non-termination certificates. The engines are trace-equivalent:
// byte-identical traces on every protocol (and, for the model engines,
// under the zero-delay adversary and the static schedule), asserted by
// differential and fuzz tests (internal/engine/README.md documents the
// determinism contract and the performance numbers).
//
// The public face of the simulator is the internal/sim façade: protocols
// self-register by name (amnesiac, classic, multiflood, detect, spantree,
// faulty), engines are one EngineKind enum, and a Session composed from
// functional options runs any protocol × engine pair under a cancellable
// context.Context with stop-capable streaming RoundObservers:
//
//	sess, _ := sim.New(g, sim.WithProtocol("amnesiac"), sim.WithEngine(sim.Parallel))
//	res, err := sess.Run(ctx)
//
// The execution model is a fourth registry-driven axis (internal/model):
// adversaries (internal/async) and schedules (internal/dynamic)
// self-register under a round-trippable spec grammar — "adversary:collision"
// is the paper's Figure 5 delaying scheduler, "schedule:blink:period=2" a
// flapping link — and sim.WithModel runs amnesiac flooding under them on
// dedicated packed-arena engines that certify non-termination by
// configuration repetition (Result.Outcome, Result.Certificate):
//
//	sess, _ := sim.New(g, sim.WithModel("adversary:collision"), sim.WithTrace(true))
//	res, _ := sess.Run(ctx) // res.Outcome == engine.OutcomeCycle on odd cycles
//
// Graphs are equally registry-driven: every family in internal/graph/gen
// self-registers under a canonical spec grammar ("grid:rows=64,cols=64",
// "gnp:n=200,p=0.05,connect=true"; afsim -list enumerates it), with
// seeded-deterministic random families. Large random instances build
// streamed (graph.FromStream: two emit passes fill the CSR directly, with
// geometric skip sampling for gnp), so million-node graphs — including the
// rmat recursive-matrix family and edgefile:path=... edge-list loading —
// construct without an O(n²) scan or intermediate adjacency. internal/scenario closes the
// protocol × engine × graph cross-product: a Matrix of axis values expands
// into declarative run Specs, and a bounded-worker Runner executes the
// suite with per-worker arena reuse, streaming results to JSONL/CSV/
// aggregate sinks (see internal/scenario/README.md for the grammar and
// examples):
//
//	specs, _ := scenario.Matrix{Graphs: []string{"grid:rows=8,cols=8", "cycle:n=65"},
//	        Protocols: []string{"amnesiac", "classic"},
//	        Engines:   []string{"sequential", "parallel"}}.Expand()
//	results, _ := (&scenario.Runner{Workers: 8}).Run(ctx, specs)
//
// Measurement is the fifth registry-driven axis (internal/analysis): every
// metric the paper reasons about is a self-registered *streaming* analysis
// under the same spec grammar — "coverage" (per-node receive counts),
// "termination" (rounds vs. the e(v)/2D+1 window and per-family closed
// forms), "bipartite" (odd-cycle witnesses, early-stopping), "spantree"
// (BFS tree), "echo" (the Dijkstra–Scholten detection baseline), and
// "quantiles" (metric promotion for suite-level stats). Analyses observe
// runs round by round with session-owned reusable buffers — no trace is
// retained or re-walked — and their merged metrics land in Result.Metrics
// ("<family>.<metric>" keys), flow through every scenario sink as columns,
// and are summarised per cell by scenario.Aggregate:
//
//	sess, _ := sim.New(g, sim.WithAnalysis("coverage", "termination", "bipartite"))
//	res, _ := sess.Run(ctx) // res.Metrics["termination.closedFormOK"] == 1
//
// All five axes share one typed-parameter spec grammar — the
// internal/specgrammar kernel: declared parameters with kinds and defaults,
// canonical declared-order rendering, and a Parse/String round-trip
// guarantee, instantiated identically by the graph, model, and analysis
// registries.
//
// The serving layer closes the loop from library to system: internal/service
// (daemonised as cmd/afsimd) is a multi-tenant HTTP/JSON façade over the
// same five axes — POST /v1/run executes one spec-addressed run over a pool
// of reusable sessions and streams per-round analysis events as NDJSON/SSE,
// POST /v1/sweep streams a scenario matrix row by row, GET /v1/registry
// enumerates everything runnable — under production serving discipline:
// per-request timeouts, panic isolation, per-tenant token-bucket admission
// with in-flight caps, a bounded run queue with fair round-robin dispatch
// (429 + Retry-After on saturation), and graceful drain on SIGTERM:
//
//	curl -N localhost:8080/v1/run -d '{"graph":"grid:rows=64,cols=64","analyses":["coverage"]}'
//
// Suites also distribute across machines: internal/shard (daemonised as
// cmd/afshard) partitions a scenario matrix into session-sharing spec groups
// and leases them over HTTP to shard workers, which execute each group
// through the ordinary resilient scenario runner and upload the rows
// gzip-compressed. Leases carry TTLs — a worker killed mid-suite silently
// loses its lease and the next idle worker steals the group — completions
// merge first-write-wins through an optional resumable manifest, and because
// every row is a deterministic function of its spec, the merged suite is
// order-normalised byte-identical to a single-process run under any worker
// count, worker kills, or chaos injection (`make suite-shard` gates on it).
// `afbench -suite -shard-workers 4` runs the same fan-out in-process;
// `-shard-coordinator :9090` lets external workers join:
//
//	afshard -mode coordinator -addr :9090 -graphs "grid:rows=8,cols=8" -out suite.jsonl.gz
//	afshard -mode worker -coordinator http://host:9090
//
// Both daemons are observable without perturbing what they observe:
// internal/obs is a dependency-free metrics kernel (atomic counters,
// gauges, and histograms behind labeled families, rendered in the
// Prometheus text exposition), and afsimd and the afshard coordinator each
// serve GET /metrics from it — request/admission/queue-wait/run-latency
// and per-phase (build/run/analyze) timing families on the service,
// lease/steal/merge/upload families on the coordinator, and scenario_*
// runner resilience counters (attempts, retries, timeouts, recovered
// panics, chaos injections) everywhere a resilient runner executes.
// `afbench -suite` prints the same counters as an end-of-suite telemetry
// stanza. Both daemons log through structured log/slog (-log-level), and
// instrumentation sits strictly on the observing side of every decision:
// differential tests in internal/scenario assert byte-identical traces and
// suite rows with metrics on and off, under the race detector.
//
// Packages:
//
//	internal/sim              façade: protocol registry, session API, observers, model + analysis axes
//	internal/service          multi-tenant HTTP serving layer: session pool, admission control, streaming
//	internal/specgrammar      shared typed-parameter spec-grammar kernel of every registry
//	internal/model            execution-model registry, packed async/dynamic engines, certificates
//	internal/analysis         streaming-analysis registry: coverage, termination, bipartite, spantree, echo, quantiles
//	internal/scenario         declarative suites: spec matrix, pooled runner, sinks, metric columns
//	internal/shard            distributed suite sharding: lease protocol, work stealing, resumable merge
//	internal/obs              metrics kernel: atomic counters/gauges/histograms, Prometheus text exposition
//	internal/graph            immutable simple graphs, builder, CSR view, encodings
//	internal/graph/gen        graph families behind a spec-grammar registry
//	internal/graph/algo       BFS, diameter, bipartiteness ground truth
//	internal/engine           synchronous round engine + Protocol/RoundObserver
//	internal/engine/chanengine concurrent channel-based engine
//	internal/engine/fastengine zero-allocation CSR engine, parallel mode
//	internal/engine/bitengine  word-parallel bitset frontier engine, push/pull kernels
//	internal/core             Amnesiac Flooding protocol and run reports
//	internal/classic          flag-based flooding baseline
//	internal/async            delay adversaries of the asynchronous model
//	internal/doublecover      exact prediction via the bipartite double cover
//	internal/theory           the paper's lemmas/theorems as executable checks
//	internal/faults           message-loss and crash injection (+ engine-hosted protocol)
//	internal/dynamic          edge-churn schedules of the dynamic model
//	internal/detect           bipartiteness detection, streaming early-stop probe
//	internal/spantree         BFS spanning trees, streaming tree recorder
//	internal/multiflood       concurrent broadcasts, union replay protocol
//	internal/termdetect       Dijkstra-Scholten termination detection baseline
//	internal/workload         shared instance catalog (integration matrix)
//	internal/stats            summary statistics for aggregate sweeps
//	internal/trace            figure-style trace rendering and export
//	internal/experiments      one registered experiment per paper artifact
//
// Binaries: cmd/afsim (single runs, any registered protocol on any engine
// on any graph spec under any -model, with -analyze attaching streaming
// analyses; -list prints every registry), cmd/afbench (paper experiment
// suite, or a scenario matrix with -suite and the
// -models/-adversaries/-schedules/-analyses axes, sharded across workers
// with -shard-workers/-shard-coordinator), cmd/afviz (trace rendering;
// -graph/-list mirror afsim), cmd/afsimd (the simulation daemon; see
// internal/service/README.md), cmd/afshard (distributed suite coordinator
// and workers; see internal/shard/README.md). Runnable examples live under
// examples/.
package amnesiacflood
